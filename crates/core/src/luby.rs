//! Luby-style randomized MIS — the classical `O(log n)`-round baseline
//! (Luby, STOC 1986; Alon–Babai–Itai 1986), run in the sleeping model
//! with every live node awake each round.
//!
//! Each round every undecided node draws a fresh random priority and
//! broadcasts it; a node whose priority is strictly smaller than all
//! priorities received from undecided neighbors joins the MIS. A node
//! that has decided broadcasts its final state once more and terminates,
//! so its awake complexity equals (twice) the number of rounds it stays
//! undecided — `Θ(log n)` w.h.p., the baseline Awake-MIS beats
//! exponentially.

use crate::state::MisState;
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{bits_for_value, Action, MessageSize, NodeCtx, Outbox, Protocol};

/// One Luby round's message: the sender's state, plus its priority when
/// undecided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMsg {
    /// "I am still competing, with this priority."
    Competing(u64),
    /// "I have decided."
    Decided(bool), // true = in MIS
}

impl MessageSize for LubyMsg {
    fn bits(&self) -> usize {
        1 + match self {
            LubyMsg::Competing(p) => bits_for_value(*p),
            LubyMsg::Decided(_) => 1,
        }
    }
}

/// The Luby baseline protocol for one node.
#[derive(Debug, Clone, Default)]
pub struct Luby {
    state: MisState,
    priority: u64,
    announced: bool,
    finished: bool,
}

impl Luby {
    /// Creates a Luby node (no parameters: priorities are drawn from the
    /// node's private randomness each round).
    pub fn new() -> Luby {
        Luby::default()
    }
}

impl Protocol for Luby {
    type Msg = LubyMsg;
    type Output = MisState;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<LubyMsg> {
        match self.state {
            MisState::Undecided => {
                self.priority = ctx.rng.gen();
                Outbox::Broadcast(LubyMsg::Competing(self.priority))
            }
            s => {
                self.announced = true;
                Outbox::Broadcast(LubyMsg::Decided(s == MisState::InMis))
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeCtx, inbox: &[(Port, LubyMsg)]) -> Action {
        if self.announced {
            // Final state went out this round; nothing left to do.
            self.finished = true;
            return Action::Terminate;
        }
        debug_assert_eq!(self.state, MisState::Undecided);
        let mut beaten = false;
        for (_, m) in inbox {
            match m {
                LubyMsg::Decided(true) => {
                    self.state = MisState::NotInMis;
                    return Action::Continue; // announce next round
                }
                LubyMsg::Decided(false) => {}
                LubyMsg::Competing(p) => {
                    if *p <= self.priority {
                        beaten = true;
                    }
                }
            }
        }
        if !beaten {
            self.state = MisState::InMis;
        }
        Action::Continue
    }

    fn output(&self) -> MisState {
        assert!(self.finished, "Luby output read before completion");
        self.state
    }

    fn aborted_output(&self) -> MisState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_mis, states_to_set};
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sleeping_congest::{SimConfig, Simulator};

    #[test]
    fn luby_computes_mis_on_many_graphs() {
        let mut rng = SmallRng::seed_from_u64(4);
        for trial in 0..15 {
            let g = generators::gnp(50, 0.1, &mut rng);
            let nodes = (0..50).map(|_| Luby::new()).collect();
            let report =
                Simulator::new(g.clone(), nodes, SimConfig::seeded(trial)).run().expect("run");
            check_mis(&g, &report.outputs).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        }
    }

    #[test]
    fn luby_awake_is_round_count() {
        // All nodes stay awake until they terminate: awake == rounds for
        // the longest-lived node.
        let g = generators::complete(20);
        let nodes = (0..20).map(|_| Luby::new()).collect();
        let report = Simulator::new(g, nodes, SimConfig::seeded(8)).run().unwrap();
        assert_eq!(report.metrics.awake_complexity(), report.metrics.round_complexity());
        let set = states_to_set(&report.outputs).unwrap();
        // A clique MIS is a single node.
        assert_eq!(set.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn isolated_nodes_join_quickly() {
        let g = graphgen::Graph::empty(5);
        let nodes = (0..5).map(|_| Luby::new()).collect();
        let report = Simulator::new(g, nodes, SimConfig::seeded(1)).run().unwrap();
        assert!(report.outputs.iter().all(|&s| s == MisState::InMis));
        assert!(report.metrics.awake_complexity() <= 2);
    }
}
