//! MIS verifiers used by every test and experiment in the workspace.

use crate::state::MisState;
use graphgen::{Graph, NodeId};

/// Whether `set` (membership by node) is independent in `g`.
pub fn is_independent(g: &Graph, set: &[bool]) -> bool {
    g.edges().all(|(u, v)| !(set[u as usize] && set[v as usize]))
}

/// Whether `set` is maximal: every node is in the set or adjacent to it.
pub fn is_maximal(g: &Graph, set: &[bool]) -> bool {
    (0..g.n() as NodeId).all(|v| {
        set[v as usize] || g.neighbors(v).iter().any(|&u| set[u as usize])
    })
}

/// Whether `set` is a maximal independent set of `g`.
pub fn is_mis(g: &Graph, set: &[bool]) -> bool {
    is_independent(g, set) && is_maximal(g, set)
}

/// Whether `set` equals the LFMIS of `g` with respect to `order`.
pub fn is_lfmis(g: &Graph, order: &[NodeId], set: &[bool]) -> bool {
    crate::greedy::lfmis(g, order) == set
}

/// Converts distributed outputs into a membership vector.
///
/// # Errors
///
/// Returns the id of the first node still undecided.
pub fn states_to_set(states: &[MisState]) -> Result<Vec<bool>, NodeId> {
    states
        .iter()
        .enumerate()
        .map(|(v, s)| match s {
            MisState::InMis => Ok(true),
            MisState::NotInMis => Ok(false),
            MisState::Undecided => Err(v as NodeId),
        })
        .collect()
}

/// Domination loop shared by [`check_maximal`] and [`check_mis`].
fn maximality_of_set(g: &Graph, set: &[bool]) -> Result<(), String> {
    for v in 0..g.n() as NodeId {
        if !set[v as usize] && !g.neighbors(v).iter().any(|&u| set[u as usize]) {
            return Err(format!("node {v} is neither in the set nor dominated"));
        }
    }
    Ok(())
}

/// Detailed maximality check, reporting the first non-dominated node.
///
/// # Errors
///
/// Describes an undecided node or a node that is neither in the set nor
/// adjacent to a set member.
pub fn check_maximal(g: &Graph, states: &[MisState]) -> Result<(), String> {
    let set = states_to_set(states).map_err(|v| format!("node {v} is undecided"))?;
    maximality_of_set(g, &set)
}

/// Detailed MIS check, reporting the first violation found.
///
/// # Errors
///
/// Describes an undecided node, an intra-set edge, or a non-dominated
/// node.
pub fn check_mis(g: &Graph, states: &[MisState]) -> Result<(), String> {
    let set = states_to_set(states).map_err(|v| format!("node {v} is undecided"))?;
    for (u, v) in g.edges() {
        if set[u as usize] && set[v as usize] {
            return Err(format!("nodes {u} and {v} are adjacent and both in the set"));
        }
    }
    maximality_of_set(g, &set)
}

/// Survivor-aware MIS check for runs under a crash fault model: verifies
/// that the alive nodes' states form an MIS **of the subgraph induced by
/// `alive`**. Crashed nodes (`alive[v] == false`) are exempt from every
/// requirement — their states, including `Undecided`, are ignored; edges
/// into them neither violate independence nor provide domination.
///
/// With an all-true `alive` mask this coincides exactly with
/// [`check_mis`], so fault-free verification is unchanged.
///
/// # Errors
///
/// Describes the first violation among survivors: an undecided alive
/// node, an alive-alive intra-set edge, or an alive node that is neither
/// in the set nor adjacent to an alive set member.
///
/// # Panics
///
/// Panics if `alive.len()` differs from `states.len()` or `g.n()`.
pub fn check_mis_survivors(g: &Graph, states: &[MisState], alive: &[bool]) -> Result<(), String> {
    assert_eq!(alive.len(), states.len(), "alive mask / states length mismatch");
    assert_eq!(alive.len(), g.n(), "alive mask / graph size mismatch");
    let mut set = vec![false; states.len()];
    for (v, s) in states.iter().enumerate() {
        if !alive[v] {
            continue;
        }
        match s {
            MisState::InMis => set[v] = true,
            MisState::NotInMis => {}
            MisState::Undecided => return Err(format!("node {v} is undecided")),
        }
    }
    for (u, v) in g.edges() {
        if alive[u as usize] && alive[v as usize] && set[u as usize] && set[v as usize] {
            return Err(format!("nodes {u} and {v} are adjacent and both in the set"));
        }
    }
    for v in 0..g.n() as NodeId {
        if alive[v as usize]
            && !set[v as usize]
            && !g.neighbors(v).iter().any(|&u| alive[u as usize] && set[u as usize])
        {
            return Err(format!("node {v} is neither in the set nor dominated"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn path_checks() {
        let g = generators::path(4);
        assert!(is_mis(&g, &[true, false, true, false]));
        assert!(is_mis(&g, &[false, true, false, true]));
        assert!(!is_independent(&g, &[true, true, false, false]));
        assert!(!is_maximal(&g, &[true, false, false, false]));
        assert!(!is_mis(&g, &[false, false, false, false]));
    }

    #[test]
    fn lfmis_check() {
        let g = generators::path(3);
        assert!(is_lfmis(&g, &[0, 1, 2], &[true, false, true]));
        assert!(!is_lfmis(&g, &[1, 0, 2], &[true, false, true]));
    }

    #[test]
    fn state_conversion_and_check() {
        use MisState::*;
        let g = generators::path(3);
        assert!(check_mis(&g, &[InMis, NotInMis, InMis]).is_ok());
        assert!(check_mis(&g, &[InMis, Undecided, InMis]).unwrap_err().contains("undecided"));
        assert!(check_mis(&g, &[InMis, InMis, NotInMis]).unwrap_err().contains("adjacent"));
        assert!(check_mis(&g, &[NotInMis, NotInMis, InMis]).unwrap_err().contains("dominated"));
        assert_eq!(states_to_set(&[InMis, NotInMis]), Ok(vec![true, false]));
        assert_eq!(states_to_set(&[InMis, Undecided]), Err(1));
    }

    #[test]
    fn survivor_check_coincides_with_check_mis_when_all_alive() {
        use MisState::*;
        let g = generators::path(4);
        let all = vec![true; 4];
        for states in [
            vec![InMis, NotInMis, InMis, NotInMis],
            vec![InMis, InMis, NotInMis, InMis],
            vec![NotInMis, NotInMis, InMis, NotInMis],
            vec![InMis, Undecided, InMis, NotInMis],
        ] {
            assert_eq!(
                check_mis(&g, &states).is_ok(),
                check_mis_survivors(&g, &states, &all).is_ok(),
                "divergence on {states:?}"
            );
        }
    }

    #[test]
    fn survivor_check_exempts_crashed_nodes() {
        use MisState::*;
        let g = generators::path(4);
        // Node 1 crashed undecided: survivors 0, 2, 3 must form an MIS
        // of the induced subgraph {0} ∪ {2-3}.
        let states = [InMis, Undecided, InMis, NotInMis];
        let alive = [true, false, true, true];
        check_mis_survivors(&g, &states, &alive).unwrap();
        // A crashed InMis neighbor does not violate independence...
        let states = [InMis, InMis, InMis, NotInMis];
        let alive = [true, false, true, true];
        check_mis_survivors(&g, &states, &alive).unwrap();
        // ...and does not dominate: node 0 relying on crashed node 1's
        // membership is a real coverage hole among survivors.
        let states = [NotInMis, InMis, InMis, NotInMis];
        let alive = [true, false, true, true];
        let err = check_mis_survivors(&g, &states, &alive).unwrap_err();
        assert!(err.contains("dominated"), "unexpected error: {err}");
        // Alive-alive violations are still caught.
        let states = [InMis, NotInMis, InMis, InMis];
        let alive = [true, false, true, true];
        let err = check_mis_survivors(&g, &states, &alive).unwrap_err();
        assert!(err.contains("adjacent"), "unexpected error: {err}");
        // An undecided survivor is still an error.
        let states = [InMis, NotInMis, Undecided, InMis];
        let alive = [true, false, true, true];
        let err = check_mis_survivors(&g, &states, &alive).unwrap_err();
        assert!(err.contains("undecided"), "unexpected error: {err}");
    }

    #[test]
    fn maximality_check() {
        use MisState::*;
        let g = generators::path(3);
        assert!(check_maximal(&g, &[InMis, NotInMis, InMis]).is_ok());
        // Maximal but not independent: check_maximal alone accepts it.
        assert!(check_maximal(&g, &[InMis, InMis, InMis]).is_ok());
        assert!(check_maximal(&g, &[NotInMis, NotInMis, InMis])
            .unwrap_err()
            .contains("dominated"));
        assert!(check_maximal(&g, &[InMis, Undecided, InMis]).unwrap_err().contains("undecided"));
    }
}
