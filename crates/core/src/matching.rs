//! Maximal matching in the sleeping model — the first of the paper's
//! concluding open directions (*"design algorithms for other symmetry
//! breaking problems such as maximal matching, coloring, etc., that have
//! better awake complexity"*).
//!
//! The classical reduction: a maximal matching of `G` is exactly a
//! maximal independent set of the line graph `L(G)`. Simulating the
//! network `L(G)` (one process per edge; two edges communicate iff they
//! share an endpoint — in a real deployment both endpoints of an edge
//! can jointly play its role with constant overhead) lets every MIS
//! algorithm in this crate double as a maximal-matching algorithm with
//! the same awake complexity in `|E|`:
//! **maximal matching in `O(log log m)` awake rounds** via `Awake-MIS`.

use crate::state::MisState;
use crate::{AwakeMis, AwakeMisConfig, NaMis, NaMisConfig};
use graphgen::products::line_graph;
use graphgen::{Graph, NodeId};
use sleeping_congest::{Metrics, SimConfig, SimError, Simulator};

/// The result of a sleeping-model maximal-matching computation.
#[derive(Debug, Clone)]
pub struct MatchingResult {
    /// The matched edges `(u, v)` with `u < v`.
    pub matching: Vec<(NodeId, NodeId)>,
    /// Per-edge-process failure count (Monte Carlo).
    pub failures: usize,
    /// Simulator metrics of the run **on the line graph** (awake
    /// complexity is per edge process).
    pub metrics: Metrics,
}

/// Computes a maximal matching of `g` by running `Awake-MIS` on the
/// line graph.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching(
    g: &Graph,
    config: AwakeMisConfig,
    seed: u64,
) -> Result<MatchingResult, SimError> {
    let (lg, edge_map) = line_graph(g);
    let nodes = (0..lg.n()).map(|_| AwakeMis::new(config)).collect();
    let report = Simulator::new(lg, nodes, SimConfig::seeded(seed)).run()?;
    let failures = report.outputs.iter().filter(|o| o.failed).count();
    let matching = report
        .outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| o.state == MisState::InMis)
        .map(|(e, _)| edge_map[e])
        .collect();
    Ok(MatchingResult { matching, failures, metrics: report.metrics })
}

/// Computes a maximal matching of `g` by running the *node-averaged*
/// `NA-MIS` on the line graph — the matching analogue of the
/// Ghaffari–Portmann average-awake direction (arXiv:2305.06120 §4): the
/// **per-edge-process average** awake cost stays `O(1)` while the worst
/// edge pays the full `Θ(log m)` phase count. Feed the returned
/// [`MatchingResult::metrics`] to
/// [`Metrics::awake_distribution`](sleeping_congest::Metrics::awake_distribution)
/// to see the dropout shape (low mean, long positive tail) on the line
/// graph.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn na_maximal_matching(
    g: &Graph,
    config: NaMisConfig,
    seed: u64,
) -> Result<MatchingResult, SimError> {
    let (lg, edge_map) = line_graph(g);
    let nodes = (0..lg.n()).map(|_| NaMis::new(config)).collect();
    let report = Simulator::new(lg, nodes, SimConfig::seeded(seed)).run()?;
    let matching = report
        .outputs
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == MisState::InMis)
        .map(|(e, _)| edge_map[e])
        .collect();
    Ok(MatchingResult { matching, failures: 0, metrics: report.metrics })
}

/// Whether `matching` is a *matching* of `g` (edges exist, pairwise
/// disjoint).
pub fn is_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; g.n()];
    for &(u, v) in matching {
        if !g.has_edge(u, v) || used[u as usize] || used[v as usize] {
            return false;
        }
        used[u as usize] = true;
        used[v as usize] = true;
    }
    true
}

/// Whether `matching` is a **maximal** matching of `g`: a matching such
/// that every edge of `g` touches a matched node.
pub fn is_maximal_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(g, matching) {
        return false;
    }
    let mut used = vec![false; g.n()];
    for &(u, v) in matching {
        used[u as usize] = true;
        used[v as usize] = true;
    }
    g.edges().all(|(u, v)| used[u as usize] || used[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matching_verifier() {
        let g = generators::path(4);
        assert!(is_maximal_matching(&g, &[(0, 1), (2, 3)]));
        assert!(is_matching(&g, &[(1, 2)]));
        assert!(is_maximal_matching(&g, &[(1, 2)])); // (1,2) IS maximal on P4
        assert!(!is_matching(&g, &[(0, 2)])); // not an edge
        assert!(!is_matching(&g, &[(0, 1), (1, 2)])); // overlaps
        assert!(!is_maximal_matching(&g, &[(0, 1)])); // edge (2,3) uncovered
    }

    #[test]
    fn awake_mis_matches_on_zoo() {
        let mut rng = SmallRng::seed_from_u64(5);
        for g in [
            generators::path(12),
            generators::cycle(9),
            generators::complete(8),
            generators::gnp(40, 0.12, &mut rng),
            generators::star(10),
        ] {
            let r = maximal_matching(&g, AwakeMisConfig::default(), 3).unwrap();
            assert_eq!(r.failures, 0);
            assert!(
                is_maximal_matching(&g, &r.matching),
                "invalid matching on n={} m={}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn na_matching_is_maximal_on_zoo() {
        let mut rng = SmallRng::seed_from_u64(7);
        for g in [
            generators::path(12),
            generators::cycle(9),
            generators::complete(8),
            generators::gnp(40, 0.12, &mut rng),
            generators::star(10),
        ] {
            let r = na_maximal_matching(&g, NaMisConfig::default(), 3).unwrap();
            assert_eq!(r.failures, 0);
            assert!(
                is_maximal_matching(&g, &r.matching),
                "invalid NA matching on n={} m={}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn matching_awake_complexity_is_small() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::gnp(128, 0.06, &mut rng);
        let r = maximal_matching(&g, AwakeMisConfig::default(), 4).unwrap();
        assert!(is_maximal_matching(&g, &r.matching));
        // O(log log m) awake per edge process, constants as in Awake-MIS.
        assert!(
            r.metrics.awake_complexity() < 80,
            "awake {}",
            r.metrics.awake_complexity()
        );
    }
}
