//! **`Awake-MIS`** — MIS in `O(log log n)` awake complexity
//! (paper §6, Theorem 13; round-efficient variant Corollary 14).
//!
//! Every node draws a batch `(i, j) ∈ [1, ℓ] × [1, 2Δ′]`: the
//! *collection* `i` with probability proportional to `2^i` (so batch
//! collections double in expected size, driving Lemma 2's residual
//! sparsity), and `j` uniformly (driving Lemma 3's shattering). Batches
//! are processed in `P = 2ℓΔ′ = O(log² n)` lexicographic phases:
//!
//! * The first round of each phase is a **communication round**. Node
//!   `v` attends exactly the communication rounds in its virtual-tree
//!   communication set `S_{g(p(v))}([1, P])` — `O(log log n)` rounds, by
//!   Observation 4 applied to `P = O(log² n)`. Decided nodes announce
//!   their state; undecided nodes listen and drop out when they hear an
//!   MIS neighbor. Observation 5 guarantees every earlier-batch decision
//!   reaches later-batch neighbors in time.
//! * The remaining rounds of phase `(i, j)` are a window in which the
//!   still-undecided batch members run [`crate::ldt_mis::LdtMis`]. By
//!   the shattering property their components are small
//!   (`O(log n)`-sized), so the window costs `O(log log n)` awake
//!   rounds.
//!
//! The algorithm is Monte Carlo: parameter overflows (an oversized
//! component, a construction running out of phases) surface as `failed`
//! nodes in the output, never as extra awake rounds or hangs — matching
//! the paper's "failures affect correctness rather than awake
//! complexity".

use crate::ldt_mis::{round_budget, LdtMis, LdtMisMsg, LdtMisParams, LdtStrategy};
use sleeping_congest::SubProtocol;
use crate::state::{MisMsg, MisState};
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{MessageSize, NodeCtx, Outbox, Protocol, Round};

/// Tunable constants of `Awake-MIS`.
///
/// The defaults follow the paper's Theorem 13 analysis with practical
/// constants (see `DESIGN.md` §3.4): `Δ′ = ⌈delta_factor · ln N⌉`,
/// component bound `K = ⌈comp_factor · ln N⌉ + 4`, and
/// `ℓ = ⌈log₂(N / (ell_density · log₂ N))⌉` collections.
#[derive(Debug, Clone, Copy)]
pub struct AwakeMisConfig {
    /// LDT-construction strategy: `Awake` gives Theorem 13, `Round`
    /// gives Corollary 14.
    pub strategy: LdtStrategy,
    /// `Δ′` as a multiple of `ln N` (paper: 9·ln(n⁴) = 36·ln n; the
    /// default exploits the tighter measured residual degrees).
    pub delta_factor: f64,
    /// Component-size bound as a multiple of `ln N` (paper: 6·ln(n⁴)).
    pub comp_factor: f64,
    /// Expected size of the first collection, as a multiple of `log₂ N`.
    pub ell_density: f64,
    /// Ablation (experiment E11): attend *every* communication round
    /// instead of the virtual-tree schedule.
    pub always_awake_comm: bool,
    /// Ablation (experiment E12): draw the collection `i` uniformly
    /// instead of geometrically.
    pub uniform_batches: bool,
}

impl Default for AwakeMisConfig {
    fn default() -> Self {
        AwakeMisConfig {
            strategy: LdtStrategy::Awake,
            delta_factor: 12.0,
            comp_factor: 24.0,
            ell_density: 10.0,
            always_awake_comm: false,
            uniform_batches: false,
        }
    }
}

impl AwakeMisConfig {
    /// The Corollary 14 variant (round-efficient LDTs).
    pub fn round_efficient() -> Self {
        AwakeMisConfig { strategy: LdtStrategy::Round, ..AwakeMisConfig::default() }
    }
}

/// Parameters derived (identically at every node) from `N` and the
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedParams {
    /// Number of collections `ℓ`.
    pub ell: u64,
    /// Batches per collection `2Δ′`.
    pub two_delta: u64,
    /// Total phases `P = ℓ · 2Δ′`.
    pub phases: u64,
    /// Component-size bound `K`.
    pub k: u32,
    /// ID space `I = N³`.
    pub id_upper: u64,
    /// Rounds per phase (1 communication round + the LDT-MIS window).
    pub r_phase: Round,
}

/// Derives the shared parameters from the common bound `N`.
pub fn derive_params(n_upper: usize, config: &AwakeMisConfig) -> DerivedParams {
    let n = n_upper.max(4) as f64;
    let ln_n = n.ln();
    let log2_n = n.log2();
    let delta_prime = (config.delta_factor * ln_n).ceil().max(1.0) as u64;
    let two_delta = 2 * delta_prime;
    let ell = (n / (config.ell_density * log2_n)).log2().ceil().max(1.0) as u64;
    let k = ((config.comp_factor * ln_n).ceil() as u32 + 4).max(8);
    let id_upper = {
        // N^3 keeps IDs unique w.h.p. for large n; the 2^24 floor keeps
        // the collision (Monte Carlo failure) probability negligible on
        // small networks too, at O(1) extra bits per message.
        let nn = n_upper.max(4) as u64;
        nn.saturating_mul(nn).saturating_mul(nn).max(1 << 24)
    };
    let r_phase = 1 + round_budget(k, id_upper, config.strategy);
    DerivedParams { ell, two_delta, phases: ell * two_delta, k, id_upper, r_phase }
}

/// Messages of `Awake-MIS`: communication-round announcements or
/// LDT-MIS window traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum AwakeMisMsg {
    /// Communication round: a decided node's state.
    State(MisMsg),
    /// LDT-MIS window traffic.
    L(LdtMisMsg),
}

impl MessageSize for AwakeMisMsg {
    fn bits(&self) -> usize {
        1 + match self {
            AwakeMisMsg::State(m) => m.bits(),
            AwakeMisMsg::L(m) => m.bits(),
        }
    }
}

/// One node's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwakeMisOutput {
    /// Final decision (`Undecided` only when `failed`).
    pub state: MisState,
    /// Monte Carlo failure flag (an LDT-MIS stage overflowed its
    /// budget).
    pub failed: bool,
    /// The batch `(i, j)` this node drew.
    pub batch: (u64, u64),
    /// Size of the shattered component this node solved (0 if it was
    /// decided before its own phase).
    pub comp_size: u64,
}

/// The `Awake-MIS` protocol for one node.
#[derive(Debug, Clone)]
pub struct AwakeMis {
    config: AwakeMisConfig,
    params: Option<DerivedParams>,
    my_id: u64,
    batch: (u64, u64),
    batch_g: u64,
    comm_wakes: Vec<Round>,
    state: MisState,
    ldt: Option<LdtMis>,
    window_start: Round,
    comp_size: u64,
    failed: bool,
    finished: bool,
}

impl AwakeMis {
    /// Creates an `Awake-MIS` node with the given configuration.
    pub fn new(config: AwakeMisConfig) -> AwakeMis {
        AwakeMis {
            config,
            params: None,
            my_id: 0,
            batch: (0, 0),
            batch_g: 0,
            comm_wakes: Vec::new(),
            state: MisState::Undecided,
            ldt: None,
            window_start: 0,
            comp_size: 0,
            failed: false,
            finished: false,
        }
    }

    /// Node with the default (Theorem 13) configuration.
    pub fn theorem13() -> AwakeMis {
        AwakeMis::new(AwakeMisConfig::default())
    }

    /// Node with the round-efficient (Corollary 14) configuration.
    pub fn corollary14() -> AwakeMis {
        AwakeMis::new(AwakeMisConfig::round_efficient())
    }

    /// Draws the batch collection `i ∈ [1, ℓ]` with `P[i] ∝ 2^i`
    /// (geometric) or uniformly (ablation).
    fn draw_collection(&self, ell: u64, rng: &mut impl Rng) -> u64 {
        if self.config.uniform_batches || ell == 1 {
            return rng.gen_range(1..=ell);
        }
        // P[i] = 2^i / (2^(ℓ+1) - 2); sample by walking the CDF.
        let total = (1u128 << (ell + 1)) - 2;
        let x = rng.gen_range(0..total);
        let mut acc = 0u128;
        for i in 1..=ell {
            acc += 1u128 << i;
            if x < acc {
                return i;
            }
        }
        ell
    }

    fn setup(&mut self, ctx: &mut NodeCtx) {
        let params = derive_params(ctx.n_upper, &self.config);
        self.my_id = ctx.rng.gen_range(1..=params.id_upper);
        let i = self.draw_collection(params.ell, ctx.rng);
        let j = ctx.rng.gen_range(1..=params.two_delta);
        self.batch = (i, j);
        self.batch_g = (i - 1) * params.two_delta + j;
        let wake_phases: Vec<u64> = if self.config.always_awake_comm {
            (1..=params.phases).collect()
        } else {
            vtree::wake_rounds(self.batch_g, params.phases)
        };
        self.comm_wakes = wake_phases.into_iter().map(|p| (p - 1) * params.r_phase).collect();
        self.params = Some(params);
    }

    /// The action moving this node to its next event after round `r`.
    fn plan(&mut self, r: Round) -> sleeping_congest::Action {
        use sleeping_congest::Action;
        let next_comm = self.comm_wakes.iter().copied().find(|&w| w > r);
        match next_comm {
            Some(w) => {
                if w == r + 1 {
                    Action::Continue
                } else {
                    Action::SleepUntil(w)
                }
            }
            None => {
                self.finished = true;
                Action::Terminate
            }
        }
    }

    fn in_window(&self, r: Round) -> bool {
        self.ldt.is_some() && r >= self.window_start
    }
}

impl Protocol for AwakeMis {
    type Msg = AwakeMisMsg;
    type Output = AwakeMisOutput;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<AwakeMisMsg> {
        let r = ctx.round;
        if self.params.is_none() {
            // First activation — round 0 normally, later under the
            // fault model's wake jitter (any comm rounds already missed
            // stay missed, an observable failure mode like loss).
            self.setup(ctx);
            return Outbox::Silent; // nobody is decided in phase 1
        }
        if self.in_window(r) {
            let lr = r - self.window_start;
            let sub = self.ldt.as_mut().expect("window implies sub");
            return match sub.send(lr, ctx) {
                Outbox::Silent => Outbox::Silent,
                Outbox::Broadcast(m) => Outbox::Broadcast(AwakeMisMsg::L(m)),
                Outbox::Unicast(v) => Outbox::Unicast(
                    v.into_iter().map(|(p, m)| (p, AwakeMisMsg::L(m))).collect(),
                ),
            };
        }
        // Communication round: decided nodes announce; undecided listen.
        if self.state.is_decided() {
            Outbox::Broadcast(AwakeMisMsg::State(MisMsg(self.state)))
        } else {
            Outbox::Silent
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, AwakeMisMsg)]) -> sleeping_congest::Action {
        use sleeping_congest::Action;
        let r = ctx.round;
        let params = *self.params.as_ref().expect("setup ran in round 0");

        if self.in_window(r) {
            let lr = r - self.window_start;
            let sub_inbox: Vec<(Port, LdtMisMsg)> = inbox
                .iter()
                .filter_map(|(p, m)| match m {
                    AwakeMisMsg::L(l) => Some((*p, l.clone())),
                    _ => None,
                })
                .collect();
            let action = {
                let sub = self.ldt.as_mut().expect("window implies sub");
                sub.receive(lr, ctx, &sub_inbox)
            };
            return match action {
                sleeping_congest::SubAction::Continue => Action::Continue,
                sleeping_congest::SubAction::SleepUntil(local) => {
                    Action::SleepUntil(self.window_start + local)
                }
                sleeping_congest::SubAction::Done => {
                    let out = self.ldt.as_ref().expect("sub exists").output();
                    self.comp_size = out.comp_size;
                    if out.failed {
                        self.failed = true;
                    } else {
                        self.state = out.state;
                    }
                    self.ldt = None;
                    self.plan(r)
                }
            };
        }

        // Communication round.
        if self.state == MisState::Undecided
            && inbox
                .iter()
                .any(|(_, m)| matches!(m, AwakeMisMsg::State(MisMsg(MisState::InMis))))
        {
            self.state = MisState::NotInMis;
        }
        let phase = r / params.r_phase + 1;
        if phase == self.batch_g && self.state == MisState::Undecided && !self.failed {
            // Our own phase: run LDT-MIS over the shattered component.
            self.window_start = r + 1;
            self.ldt = Some(LdtMis::new(LdtMisParams {
                my_id: self.my_id,
                id_upper: params.id_upper,
                k: params.k,
                strategy: self.config.strategy,
            }));
            return Action::Continue; // window starts next round (local 0)
        }
        self.plan(r)
    }

    fn output(&self) -> AwakeMisOutput {
        assert!(self.finished, "Awake-MIS output read before termination");
        AwakeMisOutput {
            state: self.state,
            failed: self.failed,
            batch: self.batch,
            comp_size: self.comp_size,
        }
    }

    fn aborted_output(&self) -> AwakeMisOutput {
        AwakeMisOutput {
            state: self.state,
            failed: self.failed,
            batch: self.batch,
            comp_size: self.comp_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_params_scale() {
        let cfg = AwakeMisConfig::default();
        let small = derive_params(64, &cfg);
        let large = derive_params(8192, &cfg);
        assert!(small.phases < large.phases);
        assert!(small.k < large.k);
        assert_eq!(small.phases, small.ell * small.two_delta);
        assert!(large.ell >= 1 && large.two_delta >= 2);
        // Phases are polylogarithmic: far below n.
        assert!(large.phases < 8192);
        assert_eq!(large.id_upper, 8192u64.pow(3));
    }

    #[test]
    fn collection_distribution_is_geometric() {
        use rand::SeedableRng;
        let node = AwakeMis::theorem13();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let ell = 6;
        let mut counts = vec![0u64; ell as usize + 1];
        for _ in 0..60_000 {
            counts[node.draw_collection(ell, &mut rng) as usize] += 1;
        }
        // Each collection should hold about twice the previous one.
        for i in 2..=ell as usize {
            let ratio = counts[i] as f64 / counts[i - 1] as f64;
            assert!((1.6..2.6).contains(&ratio), "ratio at {i}: {ratio}");
        }
    }

    #[test]
    fn uniform_ablation_is_uniform() {
        use rand::SeedableRng;
        let node = AwakeMis::new(AwakeMisConfig { uniform_batches: true, ..Default::default() });
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let mut counts = [0u64; 5];
        for _ in 0..40_000 {
            counts[node.draw_collection(4, &mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "count[{i}] = {c}");
        }
    }
}
