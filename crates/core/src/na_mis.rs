//! `NA-MIS` — node-averaged awake complexity via immediate dropout,
//! after Chatterjee–Gmyr–Pandurangan, *"Sleeping is Efficient: MIS in
//! O(1)-rounds Node-averaged Awake Complexity"* (PODC 2020,
//! arXiv:2006.07449).
//!
//! The sleeping model was introduced with **two** awake measures: the
//! worst case `max_v A_v` the source paper optimizes, and the node
//! average `(1/n)·Σ_v A_v` CGP optimize. This protocol targets the
//! second: computation proceeds in two-round *phases* (compete, then
//! resolve), and a node leaves the computation the moment its decision
//! is made — in CGP's terms it *sleeps forever*. The average cost is
//! then `2·E[phases until decision]`; because every phase decides the
//! locally-minimal survivors (and their neighbors), the undecided set
//! decays geometrically and the node average stays bounded by a
//! constant as `n` grows. The **worst case**, by contrast, is the full
//! phase count `Θ(log n)` w.h.p. — the mirror image of `Awake-MIS`,
//! whose worst case is `O(log log n)` while its average is within a
//! constant of its max.
//!
//! # Phase structure
//!
//! Phase `p` occupies rounds `p·stride` and `p·stride + 1`:
//!
//! * **compete** (`p·stride`): every undecided node draws a fresh
//!   random priority from `[1, N³]` and broadcasts it. A node beaten by
//!   no received priority wins.
//! * **resolve** (`p·stride + 1`): winners broadcast `Win` and drop
//!   out; a node hearing `Win` drops out as `NotInMis`. Survivors sleep
//!   until the next compete round.
//!
//! With the default `stride = 2` phases are back to back; a larger
//! stride spaces them out, stretching the round complexity while
//! leaving every awake count untouched — a pure demonstration that the
//! measured quantity is awake rounds, not elapsed rounds.
//!
//! # Sleeping forever vs terminating
//!
//! CGP's decided nodes sleep forever without terminating. The engine
//! models that literally as [`Action::SleepUntil`]`(`[`SLEEP_FOREVER`]`)`
//! — but a run only *completes* when every node terminates, so parking
//! the decided nodes ends in [`sleeping_congest::SimError::Deadlock`]
//! once the survivors finish. [`NaMisConfig::park_forever`] exposes the
//! literal reading for exactly that demonstration (see the tests);
//! the default resolves a decided node to [`Action::Terminate`], which
//! is observationally identical for every neighbor (messages to
//! terminated and parked nodes are equally lost) and lets the run
//! complete.

use crate::state::MisState;
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{bits_for_value, Action, MessageSize, NodeCtx, Outbox, Protocol, Round, SLEEP_FOREVER};

/// Priority space: the `[1, N³]` ID convention used across the repo
/// (floored at `2²⁴` so tiny networks still draw collision-free w.h.p.).
pub(crate) fn priority_upper(n_upper: usize) -> u64 {
    (n_upper.max(4) as u64).pow(3).max(1 << 24)
}

/// The shared compete/resolve core of a dropout phase, used by both
/// [`NaMis`] and [`AvgMis`](crate::avg_mis::AvgMis)'s first stage.
///
/// Compete: draw a fresh random priority from `[1, N³]`; lose to any
/// received priority `≤` yours (a tie counts as beaten for *both*
/// endpoints, like Luby — neither joins, both redraw next phase), win
/// into the MIS otherwise. Resolve: leave as `NotInMis` when a
/// neighbor announces a win.
#[derive(Debug, Clone, Default)]
pub(crate) struct DropoutCore {
    state: MisState,
    priority: u64,
}

impl DropoutCore {
    /// The decision so far.
    pub(crate) fn state(&self) -> MisState {
        self.state
    }

    /// Compete-round send: draws and records this phase's priority.
    pub(crate) fn draw(&mut self, ctx: &mut NodeCtx) -> u64 {
        debug_assert_eq!(self.state, MisState::Undecided);
        self.priority = ctx.rng.gen_range(1..=priority_upper(ctx.n_upper));
        self.priority
    }

    /// Compete-round receive over the priorities heard this round: wins
    /// unless beaten (or tied) by any of them.
    pub(crate) fn judge(&mut self, mut priorities: impl Iterator<Item = u64>) {
        if !priorities.any(|p| p <= self.priority) {
            self.state = MisState::InMis;
        }
    }

    /// Resolve-round receive: `heard_win` is whether any neighbor
    /// announced a win this round. Returns the state after the phase.
    pub(crate) fn resolve(&mut self, heard_win: bool) -> MisState {
        if self.state == MisState::Undecided && heard_win {
            self.state = MisState::NotInMis;
        }
        self.state
    }
}

/// Knobs of [`NaMis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaMisConfig {
    /// Rounds from one compete round to the next (`≥ 2`). The two
    /// working rounds of a phase are always consecutive; a stride above
    /// 2 inserts `stride − 2` all-asleep rounds between phases.
    pub stride: Round,
    /// Park decided nodes with [`SLEEP_FOREVER`] instead of
    /// terminating them — the paper's literal semantics, which the
    /// engine (correctly) reports as a deadlock once everyone decided.
    pub park_forever: bool,
}

impl Default for NaMisConfig {
    fn default() -> Self {
        NaMisConfig { stride: 2, park_forever: false }
    }
}

/// One phase's wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaMsg {
    /// "I am undecided, with this priority" (compete round).
    Compete(u64),
    /// "I joined the MIS" (resolve round).
    Win,
}

impl MessageSize for NaMsg {
    fn bits(&self) -> usize {
        1 + match self {
            NaMsg::Compete(p) => bits_for_value(*p),
            NaMsg::Win => 1,
        }
    }
}

/// The `NA-MIS` protocol for one node.
#[derive(Debug, Clone)]
pub struct NaMis {
    cfg: NaMisConfig,
    dropout: DropoutCore,
    finished: bool,
}

impl NaMis {
    /// Creates a node with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.stride < 2` (a phase needs its two rounds).
    pub fn new(cfg: NaMisConfig) -> NaMis {
        assert!(cfg.stride >= 2, "stride {} leaves no room for a phase", cfg.stride);
        NaMis { cfg, dropout: DropoutCore::default(), finished: false }
    }

    /// The node's decision so far (final once the node terminated).
    pub fn state(&self) -> MisState {
        self.dropout.state()
    }
}

impl Protocol for NaMis {
    type Msg = NaMsg;
    type Output = MisState;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<NaMsg> {
        if ctx.round.is_multiple_of(self.cfg.stride) {
            // Compete: only undecided nodes are still awake here.
            Outbox::Broadcast(NaMsg::Compete(self.dropout.draw(ctx)))
        } else if self.dropout.state() == MisState::InMis {
            Outbox::Broadcast(NaMsg::Win)
        } else {
            Outbox::Silent
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, NaMsg)]) -> Action {
        if ctx.round.is_multiple_of(self.cfg.stride) {
            self.dropout.judge(
                inbox.iter().filter_map(|&(_, m)| match m {
                    NaMsg::Compete(p) => Some(p),
                    NaMsg::Win => None,
                }),
            );
            return Action::Continue; // attend the resolve round
        }
        let heard_win = inbox.iter().any(|&(_, m)| m == NaMsg::Win);
        if self.dropout.resolve(heard_win).is_decided() {
            // Drop out the moment the decision is made: awake cost stops
            // accruing here, which is what bounds the node average.
            if self.cfg.park_forever {
                Action::SleepUntil(SLEEP_FOREVER)
            } else {
                self.finished = true;
                Action::Terminate
            }
        } else if self.cfg.stride == 2 {
            Action::Continue
        } else {
            // Next compete round: (p+1)·stride = round + stride − 1.
            Action::SleepUntil(ctx.round + (self.cfg.stride - 1))
        }
    }

    fn output(&self) -> MisState {
        assert!(self.finished, "NA-MIS output read before completion");
        self.dropout.state()
    }

    fn aborted_output(&self) -> MisState {
        self.dropout.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal, check_mis};
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sleeping_congest::{SimConfig, SimError, Simulator};

    fn run(g: &graphgen::Graph, cfg: NaMisConfig, seed: u64) -> sleeping_congest::RunReport<MisState> {
        let nodes = (0..g.n()).map(|_| NaMis::new(cfg)).collect();
        Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run")
    }

    #[test]
    fn computes_mis_on_many_graphs() {
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..12 {
            let g = generators::gnp(60, 0.08, &mut rng);
            let report = run(&g, NaMisConfig::default(), trial);
            check_mis(&g, &report.outputs).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            check_maximal(&g, &report.outputs).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        }
    }

    #[test]
    fn average_awake_is_far_below_worst_case() {
        // The defining shape: most nodes decide in the first phases, a
        // few unlucky ones carry the tail.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::gnp_avg_degree(512, 8.0, &mut rng);
        let report = run(&g, NaMisConfig::default(), 9);
        check_mis(&g, &report.outputs).unwrap();
        let d = report.metrics.awake_distribution();
        assert!(
            d.mean * 2.0 < d.max as f64,
            "node average {} should sit well under worst case {}",
            d.mean,
            d.max
        );
        assert!(d.skew > 0.0, "dropout must leave a positive tail, got {}", d.skew);
    }

    #[test]
    fn stride_stretches_rounds_but_not_awake() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::gnp(80, 0.1, &mut rng);
        let dense = run(&g, NaMisConfig::default(), 4);
        let spaced = run(&g, NaMisConfig { stride: 16, ..Default::default() }, 4);
        assert_eq!(dense.outputs, spaced.outputs, "stride must not change the MIS");
        assert_eq!(
            dense.metrics.awake_rounds, spaced.metrics.awake_rounds,
            "stride must not change any awake count"
        );
        assert!(
            spaced.metrics.round_complexity() > 4 * dense.metrics.round_complexity(),
            "stride 16 must stretch the schedule: {} vs {}",
            spaced.metrics.round_complexity(),
            dense.metrics.round_complexity()
        );
    }

    #[test]
    fn park_forever_is_reported_as_deadlock() {
        // The paper's literal "sleep forever" on decided nodes: the
        // engine refuses to call that run complete.
        let g = generators::path(6);
        let nodes =
            (0..6).map(|_| NaMis::new(NaMisConfig { park_forever: true, ..Default::default() })).collect();
        let err = Simulator::new(g, nodes, SimConfig::seeded(2)).run().unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock { sleeping_forever } if sleeping_forever > 0),
            "{err:?}"
        );
    }

    #[test]
    fn isolated_nodes_pay_one_phase() {
        let g = graphgen::Graph::empty(4);
        let report = run(&g, NaMisConfig::default(), 1);
        assert!(report.outputs.iter().all(|&s| s == MisState::InMis));
        assert_eq!(report.metrics.awake_complexity(), 2);
    }
}
