//! `GP-Avg-MIS` — a tunable trade-off between node-averaged and
//! worst-case awake complexity, after Ghaffari–Portmann, *"Average
//! Awake Complexity of MIS and Matching"* (SPAA 2023, arXiv:2305.06120).
//!
//! GP's observation: the two awake measures need not be traded away —
//! an average-cheap *dropout* stage decides most nodes in O(1) awake
//! rounds apiece, and the few survivors can afford a schedule with a
//! **deterministic** worst-case cap. This protocol composes exactly
//! those two stages from the repo's own building blocks:
//!
//! 1. **Dropout stage** (`balance` phases): the compete/resolve
//!    [`DropoutCore`] shared with [`NaMis`](crate::na_mis::NaMis) —
//!    each phase decides the local priority minima and their neighbors,
//!    who leave immediately, so the undecided set decays geometrically
//!    and most nodes pay `O(1)`.
//! 2. **Ranked stage**: every survivor draws a random rank from
//!    `[1, N³]` and finishes via the virtual-binary-tree schedule of
//!    [`VtMis`] over the rank space — awake cost **at most**
//!    `⌈log₂ N³⌉ + 1` rounds, deterministically (Observation 4), and the
//!    result is the LFMIS of the residual graph under the rank order.
//!
//! The `balance` knob is the trade-off dial:
//!
//! * `balance = 0` — pure ranked schedule: worst case tightly capped at
//!   `O(log N)`, but *every* node pays its full schedule, so the average
//!   is `Θ(log N)` too.
//! * growing `balance` — the average falls toward the `O(1)` of pure
//!   dropout (fewer survivors enter the ranked stage), while the worst
//!   case grows as `2·balance + O(log N)`.
//!
//! Compare `gp-avg?balance=0`, the default `gp-avg`, and `na` in one
//! grid to see the whole frontier.
//!
//! # Monte Carlo failure mode
//!
//! Ranks are drawn independently (nodes are anonymous), so two
//! *adjacent* survivors can collide — probability `≤ m/N³` per run —
//! and a colliding pair shares one wake schedule, so both may join the
//! MIS. Ranked-stage messages therefore carry the sender's rank: a node
//! that ever hears its own rank from a neighbor raises
//! [`AvgMisOutput::failed`], and the runner reports it like any other
//! Monte Carlo failure (`AlgoResult::failures`, `correct = false`) —
//! the same convention `Awake-MIS` uses for its failure probability.

use crate::na_mis::{priority_upper, DropoutCore};
use crate::state::{MisMsg, MisState};
use crate::vt_mis::VtMis;
use graphgen::Port;
use rand::Rng;
use sleeping_congest::{
    bits_for_value, Action, MessageSize, NodeCtx, Outbox, Protocol, Round, SubAction, SubProtocol,
};

/// Knobs of [`AvgMis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgMisConfig {
    /// Number of dropout phases before the ranked stage. Each phase
    /// costs every surviving node 2 awake rounds; more phases mean
    /// fewer rank-schedule survivors (lower average, higher worst case).
    pub balance: u64,
}

impl Default for AvgMisConfig {
    fn default() -> Self {
        AvgMisConfig { balance: 3 }
    }
}

/// Wire message: dropout-stage compete/win, or a wrapped ranked-stage
/// state broadcast tagged with the sender's rank (the rank makes
/// adjacent rank collisions detectable; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvgMsg {
    /// Dropout stage: "undecided, with this priority".
    Compete(u64),
    /// Dropout stage: "I joined the MIS".
    Win,
    /// Ranked stage: a `VT-MIS` state broadcast from the node holding
    /// this rank.
    State(u64, MisMsg),
}

impl MessageSize for AvgMsg {
    fn bits(&self) -> usize {
        2 + match self {
            AvgMsg::Compete(p) => bits_for_value(*p),
            AvgMsg::Win => 1,
            AvgMsg::State(rank, m) => bits_for_value(*rank) + m.bits(),
        }
    }
}

/// A node's final output: its decision plus the Monte Carlo failure
/// flag (an adjacent rank collision was detected — the run's output
/// cannot be trusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgMisOutput {
    /// The MIS decision.
    pub state: MisState,
    /// True if this node heard its own rank from a neighbor.
    pub failed: bool,
}

/// The `GP-Avg-MIS` protocol for one node.
#[derive(Debug, Clone)]
pub struct AvgMis {
    cfg: AvgMisConfig,
    dropout: DropoutCore,
    /// This node's ranked-stage rank (0 until drawn).
    rank: u64,
    /// The ranked finishing stage, constructed lazily when (and only
    /// when) this node survives the dropout stage.
    ranked: Option<VtMis>,
    collided: bool,
    finished: bool,
}

impl AvgMis {
    /// Creates a node with the given configuration.
    pub fn new(cfg: AvgMisConfig) -> AvgMis {
        AvgMis {
            cfg,
            dropout: DropoutCore::default(),
            rank: 0,
            ranked: None,
            collided: false,
            finished: false,
        }
    }

    /// First round of the ranked stage (all dropout phases precede it).
    fn ranked_start(&self) -> Round {
        2 * self.cfg.balance
    }

    /// Enters the ranked stage: draws the random rank and builds the
    /// virtual-tree schedule over the `[1, N³]` rank space.
    fn enter_ranked(&mut self, ctx: &mut NodeCtx) -> &mut VtMis {
        debug_assert!(self.ranked.is_none());
        let upper = priority_upper(ctx.n_upper);
        self.rank = ctx.rng.gen_range(1..=upper);
        self.ranked.insert(VtMis::new(self.rank, upper, None))
    }
}

impl Protocol for AvgMis {
    type Msg = AvgMsg;
    type Output = AvgMisOutput;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<AvgMsg> {
        let start = self.ranked_start();
        if ctx.round < start {
            // Dropout stage, stride-2 phases.
            if ctx.round.is_multiple_of(2) {
                Outbox::Broadcast(AvgMsg::Compete(self.dropout.draw(ctx)))
            } else if self.dropout.state() == MisState::InMis {
                Outbox::Broadcast(AvgMsg::Win)
            } else {
                Outbox::Silent
            }
        } else {
            // `balance = 0` skips the dropout stage entirely; the
            // schedule is then built at the round-0 send.
            if self.ranked.is_none() {
                self.enter_ranked(ctx);
            }
            let rank = self.rank;
            let lr = ctx.round - start;
            match self.ranked.as_mut().expect("just ensured").send(lr, ctx) {
                Outbox::Silent => Outbox::Silent,
                Outbox::Broadcast(m) => Outbox::Broadcast(AvgMsg::State(rank, m)),
                Outbox::Unicast(list) => Outbox::Unicast(
                    list.into_iter().map(|(p, m)| (p, AvgMsg::State(rank, m))).collect(),
                ),
            }
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, AvgMsg)]) -> Action {
        let start = self.ranked_start();
        if ctx.round < start {
            if ctx.round.is_multiple_of(2) {
                self.dropout.judge(inbox.iter().filter_map(|&(_, m)| match m {
                    AvgMsg::Compete(p) => Some(p),
                    _ => None,
                }));
                return Action::Continue; // attend the resolve round
            }
            let heard_win = inbox.iter().any(|&(_, m)| m == AvgMsg::Win);
            if self.dropout.resolve(heard_win).is_decided() {
                self.finished = true;
                return Action::Terminate;
            }
            if ctx.round + 1 < start {
                return Action::Continue; // next dropout phase
            }
            // Survived every dropout phase: build the ranked schedule
            // and sleep straight to its first wake round.
            let first = self.enter_ranked(ctx).first_wake();
            return Action::SleepUntil(start + first);
        }
        let lr = ctx.round - start;
        let mut wrapped: Vec<(Port, MisMsg)> = Vec::with_capacity(inbox.len());
        for &(p, m) in inbox {
            if let AvgMsg::State(rank, mm) = m {
                // A neighbor holding my rank shares my whole wake
                // schedule: symmetry cannot be broken, so flag the run.
                if rank == self.rank {
                    self.collided = true;
                }
                wrapped.push((p, mm));
            }
        }
        let ranked = self.ranked.as_mut().expect("ranked stage entered before first wake");
        match ranked.receive(lr, ctx, &wrapped) {
            SubAction::Continue => Action::Continue,
            SubAction::SleepUntil(w) => Action::SleepUntil(start + w),
            SubAction::Done => {
                self.finished = true;
                Action::Terminate
            }
        }
    }

    fn output(&self) -> AvgMisOutput {
        assert!(self.finished, "GP-Avg-MIS output read before completion");
        let state = match &self.ranked {
            Some(vt) => vt.output(),
            None => self.dropout.state(),
        };
        AvgMisOutput { state, failed: self.collided }
    }

    fn aborted_output(&self) -> AvgMisOutput {
        let state = match &self.ranked {
            Some(vt) => vt.aborted_output(),
            None => self.dropout.state(),
        };
        AvgMisOutput { state, failed: self.collided }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_maximal, check_mis};
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sleeping_congest::{SimConfig, Simulator};

    fn run(
        g: &graphgen::Graph,
        cfg: AvgMisConfig,
        seed: u64,
    ) -> sleeping_congest::RunReport<AvgMisOutput> {
        let nodes = (0..g.n()).map(|_| AvgMis::new(cfg)).collect();
        Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run")
    }

    fn states(report: &sleeping_congest::RunReport<AvgMisOutput>) -> Vec<MisState> {
        assert_eq!(
            report.outputs.iter().filter(|o| o.failed).count(),
            0,
            "unexpected rank collision"
        );
        report.outputs.iter().map(|o| o.state).collect()
    }

    #[test]
    fn computes_mis_on_many_graphs() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..10 {
            let g = generators::gnp(50, 0.1, &mut rng);
            for balance in [0, 1, 3, 8] {
                let report = run(&g, AvgMisConfig { balance }, trial);
                let s = states(&report);
                check_mis(&g, &s)
                    .unwrap_or_else(|e| panic!("trial {trial} balance {balance}: {e}"));
                check_maximal(&g, &s)
                    .unwrap_or_else(|e| panic!("trial {trial} balance {balance}: {e}"));
            }
        }
    }

    #[test]
    fn worst_case_awake_is_deterministically_capped() {
        // 2·balance dropout rounds plus the Observation-4 bound on the
        // rank schedule: ⌈log₂ N³⌉ + 1 wake rounds.
        let mut rng = SmallRng::seed_from_u64(13);
        let g = generators::gnp_avg_degree(256, 8.0, &mut rng);
        let cfg = AvgMisConfig::default();
        for seed in 0..6 {
            let report = run(&g, cfg, seed);
            check_mis(&g, &states(&report)).unwrap();
            let cap = 2 * cfg.balance
                + u64::from(vtree::depth(crate::na_mis::priority_upper(g.n())))
                + 1;
            assert!(
                report.metrics.awake_complexity() <= cap,
                "seed {seed}: awake {} above the deterministic cap {cap}",
                report.metrics.awake_complexity()
            );
        }
    }

    #[test]
    fn balance_trades_average_for_worst_case() {
        // More dropout phases: fewer rank-schedule survivors, so the
        // node average falls. Averaged over seeds to kill run noise.
        let mut rng = SmallRng::seed_from_u64(17);
        let g = generators::gnp_avg_degree(512, 8.0, &mut rng);
        let mean_avg = |balance: u64| -> f64 {
            (0..8u64)
                .map(|seed| run(&g, AvgMisConfig { balance }, seed).metrics.awake_average())
                .sum::<f64>()
                / 8.0
        };
        let pure_ranked = mean_avg(0);
        let balanced = mean_avg(6);
        assert!(
            balanced < pure_ranked / 2.0,
            "6 dropout phases must at least halve the node average: {balanced} vs {pure_ranked}"
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        for cfg in [AvgMisConfig { balance: 0 }, AvgMisConfig::default()] {
            let g = graphgen::Graph::empty(3);
            let report = run(&g, cfg, 1);
            assert!(report.outputs.iter().all(|o| o.state == MisState::InMis && !o.failed));
            let g = generators::path(2);
            let report = run(&g, cfg, 1);
            check_mis(&g, &states(&report)).unwrap();
        }
    }

    #[test]
    fn adjacent_rank_collisions_are_flagged() {
        // An actual collision is a ~N⁻³ event, so drive the receive
        // path directly: a ranked-stage node that hears its *own* rank
        // from a neighbor must raise the Monte Carlo flag, and a
        // different rank must not.
        use sleeping_congest::NodeCtx;
        let upper = priority_upper(8);
        let mut node = AvgMis::new(AvgMisConfig { balance: 0 });
        node.rank = 5;
        node.ranked = Some(VtMis::new(5, upper, None));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = NodeCtx { node: 0, degree: 1, round: 0, n_upper: 8, rng: &mut rng };
        let other = AvgMsg::State(6, MisMsg(MisState::Undecided));
        node.receive(&mut ctx, &[(0, other)]);
        assert!(!node.collided, "a distinct rank is not a collision");
        let clash = AvgMsg::State(5, MisMsg(MisState::Undecided));
        node.receive(&mut ctx, &[(0, clash)]);
        assert!(node.collided, "hearing one's own rank must set the flag");
    }
}
