//! `(Δ+1)`-coloring in the sleeping model — the second of the paper's
//! concluding open directions.
//!
//! Linial's reduction: run MIS on the product graph `G □ K_{Δ+1}`
//! (see [`graphgen::products::coloring_product`]). Any MIS of the
//! product selects **exactly one** color node `(v, c)` per original
//! node `v` (independence in `v`'s palette clique forbids two; if `v`
//! had none, each of its ≤ Δ neighbors blocks at most one of the Δ+1
//! colors, leaving an undominated `(v, c)` — contradicting maximality),
//! and the selected colors are proper along every edge. Running
//! `Awake-MIS` on the product therefore yields a
//! **`(Δ+1)`-coloring in `O(log log (nΔ))` awake rounds** per
//! node-color process.

use crate::state::MisState;
use crate::{AwakeMis, AwakeMisConfig};
use graphgen::products::coloring_product;
use graphgen::Graph;
use sleeping_congest::{Metrics, SimConfig, SimError, Simulator};

/// Result of a sleeping-model coloring computation.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    /// `colors[v]` is node `v`'s color in `0..palette` (`None` only on
    /// Monte Carlo failure).
    pub colors: Vec<Option<u32>>,
    /// Per-process failure count.
    pub failures: usize,
    /// Metrics of the run **on the product graph**.
    pub metrics: Metrics,
}

/// Computes a `palette`-coloring of `g` (requires
/// `palette ≥ Δ(g) + 1`) by running `Awake-MIS` on the coloring
/// product.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `palette < Δ(g) + 1` (the reduction's guarantee needs the
/// full palette).
pub fn coloring(
    g: &Graph,
    palette: usize,
    config: AwakeMisConfig,
    seed: u64,
) -> Result<ColoringResult, SimError> {
    assert!(
        palette > g.max_degree(),
        "palette {} too small for max degree {}",
        palette,
        g.max_degree()
    );
    let product = coloring_product(g, palette);
    let nodes = (0..product.n()).map(|_| AwakeMis::new(config)).collect();
    let report = Simulator::new(product, nodes, SimConfig::seeded(seed)).run()?;
    let failures = report.outputs.iter().filter(|o| o.failed).count();
    let mut colors: Vec<Option<u32>> = vec![None; g.n()];
    for (i, o) in report.outputs.iter().enumerate() {
        if o.state == MisState::InMis {
            let v = i / palette;
            let c = (i % palette) as u32;
            debug_assert!(colors[v].is_none(), "two colors selected for node {v}");
            colors[v] = Some(c);
        }
    }
    Ok(ColoringResult { colors, failures, metrics: report.metrics })
}

/// Whether `colors` is a proper coloring of `g` with every node
/// colored inside `0..palette`.
pub fn is_proper_coloring(g: &Graph, colors: &[Option<u32>], palette: usize) -> bool {
    if colors.len() != g.n() {
        return false;
    }
    if colors.iter().any(|c| c.is_none_or(|c| c as usize >= palette)) {
        return false;
    }
    g.edges().all(|(u, v)| colors[u as usize] != colors[v as usize])
}

/// Number of distinct colors actually used.
pub fn colors_used(colors: &[Option<u32>]) -> usize {
    let mut seen: Vec<u32> = colors.iter().flatten().copied().collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check(g: &Graph, seed: u64) {
        let palette = g.max_degree() + 1;
        let r = coloring(g, palette, AwakeMisConfig::default(), seed).unwrap();
        assert_eq!(r.failures, 0);
        assert!(
            is_proper_coloring(g, &r.colors, palette),
            "bad coloring on n={} Δ={}: {:?}",
            g.n(),
            g.max_degree(),
            r.colors
        );
    }

    #[test]
    fn colors_small_graphs() {
        check(&generators::path(10), 1);
        check(&generators::cycle(9), 2);
        check(&generators::complete(6), 3);
        check(&generators::star(8), 4);
    }

    #[test]
    fn colors_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(8);
        for seed in 0..3 {
            let g = generators::gnp(30, 0.15, &mut rng);
            check(&g, seed);
        }
    }

    #[test]
    fn verifier_detects_flaws() {
        let g = generators::path(3);
        assert!(is_proper_coloring(&g, &[Some(0), Some(1), Some(0)], 3));
        assert!(!is_proper_coloring(&g, &[Some(0), Some(0), Some(1)], 3)); // improper
        assert!(!is_proper_coloring(&g, &[Some(0), None, Some(1)], 3)); // uncolored
        assert!(!is_proper_coloring(&g, &[Some(0), Some(3), Some(0)], 3)); // out of palette
        assert_eq!(colors_used(&[Some(0), Some(2), Some(0)]), 2);
    }

    #[test]
    fn clique_uses_full_palette() {
        let g = generators::complete(5);
        let r = coloring(&g, 5, AwakeMisConfig::default(), 9).unwrap();
        assert!(is_proper_coloring(&g, &r.colors, 5));
        assert_eq!(colors_used(&r.colors), 5);
    }
}
