//! Integration tests for `VT-MIS`, the naive greedy baseline, and
//! `LDT-MIS` (both strategies), run through the simulator.

use awake_mis_core::greedy::lfmis;
use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams, LdtStrategy};
use awake_mis_core::{check_mis, is_mis, states_to_set, MisState, NaiveGreedy, VtMis};
use graphgen::{generators, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{Metrics, SimConfig, Simulator, Standalone};

/// A random permutation id assignment: node v gets `ids[v] ∈ [1, n]`.
fn permutation_ids(n: usize, seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (1..=n as u64).collect();
    ids.shuffle(&mut SmallRng::seed_from_u64(seed));
    ids
}

/// The processing order corresponding to an id assignment.
fn order_of(ids: &[u64]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..ids.len() as NodeId).collect();
    order.sort_by_key(|&v| ids[v as usize]);
    order
}

fn zoo(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        ("path20".into(), generators::path(20)),
        ("cycle15".into(), generators::cycle(15)),
        ("star16".into(), generators::star(16)),
        ("clique10".into(), generators::complete(10)),
        ("grid5x6".into(), generators::grid(5, 6)),
        ("tree25".into(), generators::random_tree(25, &mut rng)),
        ("gnp50".into(), generators::gnp(50, 0.1, &mut rng)),
        ("gnp30-dense".into(), generators::gnp(30, 0.35, &mut rng)),
        (
            "forest".into(),
            generators::disjoint_union(&[
                generators::path(7),
                generators::complete(5),
                Graph::empty(4),
            ]),
        ),
    ]
}

fn run_vt(g: &Graph, ids: &[u64], i_max: u64, seed: u64) -> (Vec<MisState>, Metrics) {
    let nodes =
        (0..g.n()).map(|v| Standalone::new(VtMis::new(ids[v], i_max, None))).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

#[test]
fn vt_mis_equals_sequential_lfmis_exactly() {
    // The theorem behind Lemma 10: VT-MIS output is the LFMIS of the ID
    // order, bit for bit, on every topology and many orders.
    for (name, g) in zoo(3) {
        for seed in 0..5u64 {
            let ids = permutation_ids(g.n(), seed * 31 + 7);
            let (states, _) = run_vt(&g, &ids, g.n() as u64, seed);
            let set = states_to_set(&states)
                .unwrap_or_else(|v| panic!("{name}: node {v} undecided"));
            let expect = lfmis(&g, &order_of(&ids));
            assert_eq!(set, expect, "{name} seed {seed}: VT-MIS deviates from LFMIS");
        }
    }
}

#[test]
fn vt_mis_awake_is_logarithmic_naive_is_linear() {
    // Lemma 10 vs the naive baseline: exponential separation in I.
    for n in [32usize, 128, 512] {
        let g = generators::cycle(n);
        let ids = permutation_ids(n, 1);
        let (_, m_vt) = run_vt(&g, &ids, n as u64, 5);
        let bound = (n as f64).log2() + 2.0;
        assert!(
            (m_vt.awake_complexity() as f64) <= bound,
            "n = {n}: VT-MIS awake {} > {bound}",
            m_vt.awake_complexity()
        );

        let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
        let report = Simulator::new(g, nodes, SimConfig::seeded(5)).run().unwrap();
        assert_eq!(report.metrics.awake_complexity(), n as u64, "naive greedy is Θ(I) awake");
    }
}

#[test]
fn naive_greedy_equals_lfmis() {
    for (name, g) in zoo(11) {
        let ids = permutation_ids(g.n(), 99);
        let nodes = (0..g.n()).map(|v| NaiveGreedy::new(ids[v], g.n() as u64)).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(2)).run().unwrap();
        let set = states_to_set(&report.outputs).unwrap();
        assert_eq!(set, lfmis(&g, &order_of(&ids)), "{name}");
    }
}

#[test]
fn vt_mis_with_sparse_id_space() {
    // IDs need not be a permutation: any distinct ids in [1, I] work.
    let g = generators::gnp(40, 0.12, &mut SmallRng::seed_from_u64(8));
    let mut rng = SmallRng::seed_from_u64(21);
    let mut ids: Vec<u64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while ids.len() < 40 {
        let id = rng.gen_range(1..=100_000u64);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    let (states, m) = run_vt(&g, &ids, 100_000, 4);
    let set = states_to_set(&states).unwrap();
    assert_eq!(set, lfmis(&g, &order_of(&ids)));
    // Awake stays logarithmic in I even when I >> n...
    assert!(m.awake_complexity() <= 18, "awake {}", m.awake_complexity());
    // ...while round complexity is Θ(I).
    assert!(m.round_complexity() <= 100_000);
}

fn run_ldt_mis(
    g: &Graph,
    strategy: LdtStrategy,
    seed: u64,
) -> (Vec<awake_mis_core::LdtMisOutput>, Metrics) {
    let n = g.n();
    let id_upper = ((n.max(4) as u64).pow(3)).max(1 << 24);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51ED);
    let mut seen = std::collections::HashSet::new();
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = rng.gen_range(1..=id_upper);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    let nodes = (0..n)
        .map(|v| {
            Standalone::new(LdtMis::new(LdtMisParams {
                my_id: ids[v],
                id_upper,
                k: n.max(1) as u32,
                strategy,
            }))
        })
        .collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

#[test]
fn ldt_mis_outputs_valid_mis() {
    for (name, g) in zoo(17) {
        for seed in [1u64, 2] {
            let (outs, _) = run_ldt_mis(&g, LdtStrategy::Awake, seed);
            assert!(outs.iter().all(|o| !o.failed), "{name} seed {seed}: failures");
            let states: Vec<MisState> = outs.iter().map(|o| o.state).collect();
            check_mis(&g, &states).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

#[test]
fn ldt_mis_round_strategy_outputs_valid_mis() {
    for (name, g) in zoo(23) {
        let (outs, _) = run_ldt_mis(&g, LdtStrategy::Round, 3);
        assert!(outs.iter().all(|o| !o.failed), "{name}: failures");
        let states: Vec<MisState> = outs.iter().map(|o| o.state).collect();
        check_mis(&g, &states).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn ldt_mis_output_is_lfmis_of_some_order() {
    // Lemma 11: the output equals the LFMIS of a uniformly random order
    // of each component. We verify the weaker (but checkable without
    // peeking into the protocol) consequence: the output is an MIS, and
    // on a *tree* every MIS arising from some order — reconstruct one
    // greedy order consistent with the output and check it reproduces
    // the output exactly.
    let g = generators::path(30);
    let (outs, _) = run_ldt_mis(&g, LdtStrategy::Awake, 9);
    let set: Vec<bool> = outs.iter().map(|o| o.state == MisState::InMis).collect();
    assert!(is_mis(&g, &set));
    // Order: all InMis nodes first, then the rest. The LFMIS of this
    // order equals `set` iff `set` is an MIS (standard fact); this
    // certifies output consistency with *some* sequential greedy run.
    let mut order: Vec<NodeId> = (0..30).collect();
    order.sort_by_key(|&v| !set[v as usize]);
    assert_eq!(lfmis(&g, &order), set);
}

#[test]
fn ldt_mis_component_sizes_reported() {
    let g = generators::disjoint_union(&[
        generators::complete(6),
        generators::path(4),
        Graph::empty(2),
    ]);
    let (outs, _) = run_ldt_mis(&g, LdtStrategy::Awake, 5);
    for (v, o) in outs.iter().enumerate() {
        match v {
            0..=5 => assert_eq!(o.comp_size, 6, "clique node {v}"),
            6..=9 => assert_eq!(o.comp_size, 4, "path node {v}"),
            _ => {
                assert_eq!(o.comp_size, 1, "isolated node {v}");
                assert_eq!(o.state, MisState::InMis);
            }
        }
    }
}

#[test]
fn ldt_mis_awake_complexity_shape() {
    // Lemma 11: O(log n' + n'·log n'/log I) awake. On a single
    // component of size n' = n with I = n^3, the permutation-broadcast
    // term n'·log n'/log I = Θ(n'/3) dominates — check both terms with
    // explicit constants.
    for n in [16usize, 64, 256] {
        let g = generators::cycle(n);
        let (_, m) = run_ldt_mis(&g, LdtStrategy::Awake, 6);
        let log2n = (n as f64).log2();
        let log2i = ((n as f64).powi(3)).log2().max(6.0);
        let bound = 16.0 * (log2n + 2.0) + 6.0 * (n as f64 * log2n / log2i);
        assert!(
            (m.awake_complexity() as f64) <= bound,
            "n = {n}: LDT-MIS awake {} > {bound:.0}",
            m.awake_complexity()
        );
    }
    // The term that matters for Awake-MIS: on *small* components
    // (K = O(log n), the shattered regime) the whole pipeline is cheap.
    // ~11 awake rounds per merge phase × O(log 8) phases + ranking +
    // permutation + VT ⇒ low three digits, independent of the number of
    // components (they run concurrently).
    let g = generators::disjoint_union(&vec![generators::path(8); 32]);
    let (_, m) = run_ldt_mis(&g, LdtStrategy::Awake, 6);
    assert!(
        m.awake_complexity() <= 130,
        "shattered components: awake {} too large",
        m.awake_complexity()
    );
}

#[test]
fn ldt_mis_is_deterministic_per_seed() {
    let g = generators::gnp(25, 0.2, &mut SmallRng::seed_from_u64(31));
    let (a, ma) = run_ldt_mis(&g, LdtStrategy::Awake, 12);
    let (b, mb) = run_ldt_mis(&g, LdtStrategy::Awake, 12);
    assert_eq!(a, b);
    assert_eq!(ma.awake_rounds, mb.awake_rounds);
}
