//! Property-based tests (proptest) on the core invariants.

use awake_mis_core::greedy::{lfmis, random_greedy, residual_degree};
use awake_mis_core::{is_mis, states_to_set, AwakeMis, AwakeMisConfig, Luby, MisState, VtMis};
use graphgen::{Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sleeping_congest::{SimConfig, Simulator, Standalone};

/// Strategy: a random simple graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 0.0f64..0.4).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        graphgen::generators::gnp(n, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sequential greedy always outputs a valid MIS, and its output
    /// is invariant under the LFMIS fixed point: running greedy again
    /// with MIS nodes first reproduces it (composability sanity).
    #[test]
    fn sequential_greedy_invariants(g in arb_graph(60), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (order, mis) = random_greedy(&g, &mut rng);
        prop_assert!(is_mis(&g, &mis));
        // LFMIS prefix-composability: the LFMIS of the order restricted
        // to "MIS first, rest after" is the same set.
        let mut order2: Vec<NodeId> = order.clone();
        order2.sort_by_key(|&v| !mis[v as usize]);
        prop_assert_eq!(lfmis(&g, &order2), mis);
    }

    /// VT-MIS equals the sequential LFMIS exactly, for arbitrary graphs
    /// and arbitrary ID permutations.
    #[test]
    fn vt_mis_matches_lfmis(g in arb_graph(40), seed in any::<u64>()) {
        let n = g.n();
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.shuffle(&mut SmallRng::seed_from_u64(seed));
        let nodes = (0..n).map(|v| Standalone::new(VtMis::new(ids[v], n as u64, None))).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let set = states_to_set(&report.outputs).unwrap();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| ids[v as usize]);
        prop_assert_eq!(set, lfmis(&g, &order));
    }

    /// Luby always outputs a valid MIS.
    #[test]
    fn luby_always_valid(g in arb_graph(50), seed in any::<u64>()) {
        let nodes = (0..g.n()).map(|_| Luby::new()).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let set = states_to_set(&report.outputs).unwrap();
        prop_assert!(is_mis(&g, &set));
    }

    /// Awake-MIS always outputs a valid MIS (Monte Carlo: the proptest
    /// run doubles as a failure-rate estimate — any failure fails the
    /// property).
    #[test]
    fn awake_mis_always_valid(g in arb_graph(48), seed in any::<u64>()) {
        let nodes = (0..g.n()).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        prop_assert!(report.outputs.iter().all(|o| !o.failed));
        let states: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
        let set = states_to_set(&states).map_err(|v| {
            TestCaseError::fail(format!("node {v} undecided"))
        })?;
        prop_assert!(is_mis(&g, &set));
    }

    /// Lemma 2 (residual sparsity): the measured residual degree never
    /// exceeds the bound with ε = 1/n... the bound holds *w.h.p.*, so we
    /// allow the generous ε = n⁻² form used by `residual_profile`.
    #[test]
    fn residual_sparsity_bound(seed in any::<u64>(), n in 50usize..150) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graphgen::generators::gnp(n, 0.3, &mut rng);
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut rng);
        let t = n / 4;
        let (_, d) = residual_degree(&g, &order, t, 2 * t);
        let bound = 2.0 * ((n * n) as f64).ln();
        prop_assert!((d as f64) <= bound, "residual degree {d} above {bound}");
    }

    /// Awake-complexity invariant: the per-node awake counts measured by
    /// the engine always bound the average, and no node exceeds the
    /// virtual-tree + window budget by construction.
    #[test]
    fn awake_accounting_consistent(g in arb_graph(40), seed in any::<u64>()) {
        let nodes = (0..g.n()).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
        let m = &report.metrics;
        prop_assert!(m.awake_average() <= m.awake_complexity() as f64 + 1e-9);
        prop_assert_eq!(m.messages_sent, m.messages_delivered + m.messages_lost);
        prop_assert!(m.active_rounds <= m.round_complexity());
    }
}
