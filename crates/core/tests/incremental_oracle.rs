//! Property oracle for incremental MIS repair: random graph + random
//! delta stream → after **every** epoch the repaired states verify as a
//! maximal independent set of the mutated active graph, and a
//! from-scratch run on the same graph is equally valid (same *validity*,
//! not the same set). Also pins the delete-to-empty and isolated-node
//! edge cases that frontier logic tends to get wrong.

use awake_mis_core::incremental::{repair, RepairConfig, SubSolution};
use awake_mis_core::{check_mis_survivors, greedy, MisState};
use graphgen::delta::{DeltaBatch, DynGraph};
use graphgen::{Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic frontier solver: lowest-id-first greedy MIS.
fn greedy_solve(sub: &Graph, _seed: u64) -> Result<SubSolution, String> {
    let order: Vec<NodeId> = (0..sub.n() as NodeId).collect();
    let set = greedy::lfmis(sub, &order);
    Ok(SubSolution {
        states: greedy::to_states(&set),
        rounds: 1,
        awake_max: 1,
        awake_total: sub.n() as u64,
        messages: 0,
    })
}

/// From-scratch MIS on the active subgraph, mapped back to global ids.
fn from_scratch(d: &DynGraph) -> Vec<MisState> {
    let keep: Vec<NodeId> =
        (0..d.n() as NodeId).filter(|&v| d.is_active(v)).collect();
    let (sub, map) = d.graph().induced(&keep);
    let order: Vec<NodeId> = (0..sub.n() as NodeId).collect();
    let set = greedy::lfmis(&sub, &order);
    let mut states = vec![MisState::NotInMis; d.n()];
    for (i, &v) in map.iter().enumerate() {
        states[v as usize] = if set[i] { MisState::InMis } else { MisState::NotInMis };
    }
    states
}

/// A random batch against the current dynamic graph: a mix of edge
/// inserts/deletes and occasional node churn, built so it always
/// validates (no conflicts, no ops at inactive nodes).
fn random_batch(d: &DynGraph, ops: usize, rng: &mut SmallRng) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    let g = d.graph();
    let active: Vec<NodeId> =
        (0..d.n() as NodeId).filter(|&v| d.is_active(v)).collect();
    let mut inserted: Vec<(NodeId, NodeId)> = Vec::new();
    let mut deleted: Vec<(NodeId, NodeId)> = Vec::new();
    let mut removed: Vec<NodeId> = Vec::new();
    for _ in 0..ops {
        match rng.gen_range(0..10u32) {
            // Delete a random existing edge at a random active node.
            0..=3 => {
                if active.is_empty() {
                    continue;
                }
                let v = active[rng.gen_range(0..active.len())];
                if g.degree(v) == 0 || removed.contains(&v) {
                    continue;
                }
                let u = g.neighbors(v)[rng.gen_range(0..g.degree(v))];
                let e = (v.min(u), v.max(u));
                if !inserted.contains(&e) && !removed.contains(&u) {
                    batch.delete_edge(v, u);
                    deleted.push(e);
                }
            }
            // Insert a random absent edge between active nodes.
            4..=7 => {
                if active.len() < 2 {
                    continue;
                }
                let a = active[rng.gen_range(0..active.len())];
                let b = active[rng.gen_range(0..active.len())];
                let e = (a.min(b), a.max(b));
                if a != b
                    && !g.has_edge(a, b)
                    && !deleted.contains(&e)
                    && !removed.contains(&a)
                    && !removed.contains(&b)
                {
                    batch.insert_edge(a, b);
                    inserted.push(e);
                }
            }
            // Remove an active node (only if no queued edge op touches it).
            8 => {
                if active.is_empty() {
                    continue;
                }
                let v = active[rng.gen_range(0..active.len())];
                let touches = |&(a, b): &(NodeId, NodeId)| a == v || b == v;
                if !inserted.iter().any(touches) && !removed.contains(&v) {
                    batch.remove_node(v);
                    removed.push(v);
                }
            }
            // Add a node, wired to one active survivor when possible.
            _ => {
                let id = (d.n() + batch.added_count()) as NodeId;
                batch.add_nodes(1);
                if let Some(&w) =
                    active.iter().find(|w| !removed.contains(w))
                {
                    batch.insert_edge(id, w);
                    inserted.push((w.min(id), w.max(id)));
                }
            }
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The oracle: every epoch of a random delta stream leaves repair
    /// with a valid MIS of the active graph, wakes no more nodes than a
    /// full recompute would, and a from-scratch solve agrees the graph
    /// is solvable.
    #[test]
    fn repair_survives_random_delta_streams(
        n in 2usize..40,
        graph_seed in any::<u64>(),
        p in 0.0f64..0.4,
        stream_seed in any::<u64>(),
        epochs in 1usize..6,
        ops in 1usize..12,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = graphgen::generators::gnp(n, p, &mut rng);
        let mut d = DynGraph::new(g);
        let mut states = from_scratch(&d);
        check_mis_survivors(d.graph(), &states, d.active()).unwrap();

        let mut rng = SmallRng::seed_from_u64(stream_seed);
        for epoch in 0..epochs {
            let batch = random_batch(&d, ops, &mut rng);
            let applied = d.apply(&batch).unwrap();
            let out = repair(
                d.graph(),
                d.active(),
                &states,
                &applied,
                stream_seed ^ epoch as u64,
                &RepairConfig::default(),
                greedy_solve,
            );
            prop_assert!(out.correct, "epoch {epoch}: {:?}", out.error);
            // Repair's MIS verifies on the mutated graph.
            check_mis_survivors(d.graph(), &out.states, d.active())
                .map_err(|e| TestCaseError::fail(format!("epoch {epoch}: {e}")))?;
            // Locality: repair wakes at most the full-recompute cost.
            prop_assert!(out.woken <= d.active_count() as u64);
            // A from-scratch run is also valid (validity parity, not
            // set equality — both must pass the same checker).
            let scratch = from_scratch(&d);
            check_mis_survivors(d.graph(), &scratch, d.active())
                .map_err(|e| TestCaseError::fail(format!("scratch epoch {epoch}: {e}")))?;
            states = out.states;
        }
    }
}

#[test]
fn delete_to_empty_graph() {
    // Delete every edge of a clique one epoch at a time; the MIS must
    // grow to all nodes once everyone is isolated.
    let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
    let mut d = DynGraph::new(g);
    let order: Vec<NodeId> = (0..4).collect();
    let mut states = greedy::to_states(&greedy::lfmis(d.graph(), &order));
    let all_edges: Vec<(NodeId, NodeId)> =
        vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    for &(a, b) in &all_edges {
        let mut batch = DeltaBatch::new();
        batch.delete_edge(a, b);
        let applied = d.apply(&batch).unwrap();
        let out = repair(
            d.graph(),
            d.active(),
            &states,
            &applied,
            11,
            &RepairConfig::default(),
            greedy_solve,
        );
        assert!(out.correct, "{:?}", out.error);
        states = out.states;
    }
    assert_eq!(d.graph().m(), 0);
    assert!(states.iter().all(|&s| s == MisState::InMis));
}

#[test]
fn isolated_nodes_always_join() {
    // Nodes added with no edges are isolated: the frontier solver must
    // put each of them in the MIS.
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let mut d = DynGraph::new(g);
    let order: Vec<NodeId> = (0..2).collect();
    let states = greedy::to_states(&greedy::lfmis(d.graph(), &order));
    let mut batch = DeltaBatch::new();
    batch.add_nodes(3);
    let applied = d.apply(&batch).unwrap();
    let out = repair(
        d.graph(),
        d.active(),
        &states,
        &applied,
        5,
        &RepairConfig::default(),
        greedy_solve,
    );
    assert!(out.correct, "{:?}", out.error);
    for v in 2..5 {
        assert_eq!(out.states[v], MisState::InMis, "isolated node {v} must self-join");
    }
    // And only the additions woke anyone.
    assert_eq!(out.woken, 3);
}
