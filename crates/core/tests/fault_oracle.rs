//! Fault-model property oracle: under arbitrary message loss (and a
//! crash window), no algorithm may fail *silently*. Every run either
//! reports Monte Carlo failures, or its output passes the
//! independently recomputed survivor-subgraph verification — and at
//! `loss = 0` with no crashes, the run is byte-for-byte the clean run:
//! nothing dropped, everything verified.

use awake_mis_core::{
    check_mis, check_mis_survivors, AvgMis, AvgMisConfig, AwakeMis, AwakeMisConfig, Luby,
    MisState, VtMis,
};
use graphgen::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sleeping_congest::{FaultModel, Metrics, SimConfig, Simulator, Standalone};

/// Strategy: a graph drawn from one of four shapes (random, path,
/// cycle, complete) — loss hurts differently on sparse chains than on
/// dense neighborhoods.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 0.0f64..0.5, 0u8..4).prop_map(|(n, seed, p, shape)| match shape {
        0 => graphgen::generators::gnp(n, p, &mut SmallRng::seed_from_u64(seed)),
        1 => graphgen::generators::path(n),
        2 => graphgen::generators::cycle(n),
        _ => graphgen::generators::complete(n),
    })
}

/// Runs one algorithm under `fault`, returning the MIS states, the
/// failure count, and the engine metrics.
fn run_one(name: &str, g: &Graph, seed: u64, fault: &FaultModel) -> (Vec<MisState>, usize, Metrics) {
    let n = g.n();
    let cfg = SimConfig { fault: fault.clone(), ..SimConfig::seeded(seed) };
    match name {
        "luby" => {
            let nodes = (0..n).map(|_| Luby::new()).collect();
            let r = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            (r.outputs, 0, r.metrics)
        }
        "vt-mis" => {
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x77));
            let nodes =
                (0..n).map(|v| Standalone::new(VtMis::new(ids[v], n as u64, None))).collect();
            let r = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            (r.outputs, 0, r.metrics)
        }
        "awake-mis" => {
            let nodes = (0..n).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
            let r = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = r.outputs.iter().filter(|o| o.failed).count();
            (r.outputs.iter().map(|o| o.state).collect(), failures, r.metrics)
        }
        "gp-avg-mis" => {
            let nodes = (0..n).map(|_| AvgMis::new(AvgMisConfig::default())).collect();
            let r = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = r.outputs.iter().filter(|o| o.failed).count();
            (r.outputs.iter().map(|o| o.state).collect(), failures, r.metrics)
        }
        other => panic!("unknown algorithm {other}"),
    }
}

const ALGOS: [&str; 4] = ["luby", "vt-mis", "awake-mis", "gp-avg-mis"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Failure is observable, never silent: under arbitrary loss every
    /// run terminates and either reports failures, fails verification
    /// (both observable to the harness), or IS a valid MIS of the
    /// survivor subgraph. The property a robustness surface rests on —
    /// `failure_rate` counts real events, and what it doesn't count is
    /// genuinely correct.
    #[test]
    fn lossy_runs_fail_observably_or_verify(
        g in arb_graph(28),
        seed in any::<u64>(),
        loss in 0.0f64..0.2,
    ) {
        let fault = FaultModel { loss, ..FaultModel::none() };
        for name in ALGOS {
            let (states, failures, metrics) = run_one(name, &g, seed, &fault);
            prop_assert_eq!(states.len(), g.n());
            prop_assert_eq!(metrics.crashed_count(), 0, "loss must not crash nodes");
            let verdict = check_mis_survivors(&g, &states, &metrics.alive());
            if failures == 0 && verdict.is_err() {
                // Observable: the harness flags this run as incorrect.
                // Loss must actually have fired — a clean run may not
                // fail verification.
                prop_assert!(
                    metrics.messages_faulted > 0,
                    "{} failed verification without any dropped message: {:?}",
                    name, verdict
                );
            }
            if loss == 0.0 {
                prop_assert_eq!(metrics.messages_faulted, 0, "{} dropped at loss=0", name);
                prop_assert_eq!(failures, 0, "{} failed at loss=0", name);
                prop_assert!(verdict.is_ok(), "{} incorrect at loss=0: {:?}", name, verdict);
            }
        }
    }

    /// Crashes interact correctly with verification: crashed nodes are
    /// exempt, survivors must still form an MIS of the subgraph they
    /// induce — and on runs with no crashes the survivor check is
    /// exactly the full check.
    #[test]
    fn crashed_runs_verify_on_the_survivor_subgraph(
        g in arb_graph(28),
        seed in any::<u64>(),
        crash in 0.0f64..0.05,
    ) {
        // Bound the window so dense instances keep some survivors.
        let fault = FaultModel { crash, crash_until: 4, ..FaultModel::none() };
        for name in ["luby", "vt-mis"] {
            let (states, failures, metrics) = run_one(name, &g, seed, &fault);
            let alive = metrics.alive();
            prop_assert_eq!(
                alive.iter().filter(|&&a| !a).count(),
                metrics.crashed_count(),
                "alive mask and crash count disagree"
            );
            let verdict = check_mis_survivors(&g, &states, &alive);
            if failures == 0 && verdict.is_err() {
                prop_assert!(
                    metrics.crashed_count() > 0 || metrics.messages_faulted > 0,
                    "{} failed verification on a fault-free run: {:?}",
                    name, verdict
                );
            }
            if metrics.crashed_count() == 0 {
                prop_assert_eq!(
                    check_mis(&g, &states).is_ok(),
                    verdict.is_ok(),
                    "survivor check must equal the full check when everyone survived"
                );
            }
        }
    }
}
