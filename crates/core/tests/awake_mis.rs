//! End-to-end tests for `Awake-MIS` (Theorem 13 and Corollary 14).

use awake_mis_core::{check_mis, AwakeMis, AwakeMisConfig, Luby, MisState};
use graphgen::{generators, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sleeping_congest::{Metrics, SimConfig, Simulator};

fn run(g: &Graph, cfg: AwakeMisConfig, seed: u64) -> (Vec<awake_mis_core::AwakeMisOutput>, Metrics) {
    let nodes = (0..g.n()).map(|_| AwakeMis::new(cfg)).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().expect("run");
    (report.outputs, report.metrics)
}

fn assert_valid(name: &str, g: &Graph, outs: &[awake_mis_core::AwakeMisOutput]) {
    let failed = outs.iter().filter(|o| o.failed).count();
    assert_eq!(failed, 0, "{name}: {failed} Monte Carlo failures");
    let states: Vec<MisState> = outs.iter().map(|o| o.state).collect();
    check_mis(g, &states).unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn theorem13_valid_mis_on_graph_zoo() {
    let mut rng = SmallRng::seed_from_u64(100);
    let graphs: Vec<(String, Graph)> = vec![
        ("path64".into(), generators::path(64)),
        ("cycle63".into(), generators::cycle(63)),
        ("star64".into(), generators::star(64)),
        ("clique32".into(), generators::complete(32)),
        ("grid8x8".into(), generators::grid(8, 8)),
        ("tree100".into(), generators::random_tree(100, &mut rng)),
        ("gnp100".into(), generators::gnp(100, 0.08, &mut rng)),
        ("gnp64-dense".into(), generators::gnp(64, 0.3, &mut rng)),
        ("rgg100".into(), generators::random_geometric(100, 0.18, &mut rng)),
        ("ba100".into(), generators::barabasi_albert(100, 3, &mut rng)),
        (
            "forest".into(),
            generators::disjoint_union(&[
                generators::path(20),
                generators::complete(10),
                Graph::empty(5),
            ]),
        ),
        ("empty32".into(), Graph::empty(32)),
    ];
    for (name, g) in graphs {
        let (outs, _) = run(&g, AwakeMisConfig::default(), 1);
        assert_valid(&name, &g, &outs);
    }
}

#[test]
fn theorem13_many_seeds_no_failures() {
    // Monte Carlo robustness: many independent runs must all verify.
    let mut rng = SmallRng::seed_from_u64(200);
    let g = generators::gnp(128, 0.06, &mut rng);
    for seed in 0..10u64 {
        let (outs, _) = run(&g, AwakeMisConfig::default(), seed);
        assert_valid(&format!("seed {seed}"), &g, &outs);
    }
}

#[test]
fn corollary14_valid_mis() {
    let mut rng = SmallRng::seed_from_u64(300);
    let graphs: Vec<(String, Graph)> = vec![
        ("gnp80".into(), generators::gnp(80, 0.1, &mut rng)),
        ("grid7x7".into(), generators::grid(7, 7)),
        ("clique20".into(), generators::complete(20)),
    ];
    for (name, g) in graphs {
        let (outs, _) = run(&g, AwakeMisConfig::round_efficient(), 2);
        assert_valid(&name, &g, &outs);
    }
}

#[test]
fn awake_complexity_beats_round_complexity_exponentially() {
    // The defining property of the sleeping model result: awake
    // complexity is tiny while round complexity is enormous.
    let mut rng = SmallRng::seed_from_u64(400);
    let g = generators::gnp(256, 0.04, &mut rng);
    let (outs, m) = run(&g, AwakeMisConfig::default(), 3);
    assert_valid("gnp256", &g, &outs);
    assert!(
        m.awake_complexity() * 1000 < m.round_complexity(),
        "awake {} vs rounds {}",
        m.awake_complexity(),
        m.round_complexity()
    );
    // And the engine never materialized the sleeping rounds.
    assert!(m.active_rounds < m.round_complexity() / 10);
}

#[test]
fn awake_complexity_growth_is_flat() {
    // Theorem 13 shape: awake complexity ~ c·log log n. Between n = 64
    // and n = 1024 (log log₂ going from 2.58 to 3.32), the measured
    // awake complexity must grow far slower than log n does (which
    // would be a 2.5x jump for Luby-style algorithms... here we check
    // the growth factor stays small).
    // Max awake complexity is heavy-tailed: a run where every shattered
    // component is a singleton skips the LDT-MIS pipeline entirely,
    // while any 2-node component pays the full construct/rank/permute
    // window, and the randomized fragment merging has a geometric tail.
    // Compare seed-averaged maxima so the shape check is about growth
    // with n, not about which size drew the unlucky component.
    let mut awakes = Vec::new();
    for n in [64usize, 256, 1024] {
        let mut total = 0u64;
        let mut runs = 0u64;
        for gseed in [500u64, 501, 502] {
            let mut rng = SmallRng::seed_from_u64(gseed);
            let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
            for seed in 4..12u64 {
                let (outs, m) = run(&g, AwakeMisConfig::default(), seed);
                assert_valid(&format!("n={n}"), &g, &outs);
                total += m.awake_complexity();
                runs += 1;
            }
        }
        awakes.push(total as f64 / runs as f64);
    }
    // 16x more nodes: awake complexity grows by < 75%.
    assert!(
        awakes[2] <= awakes[0] * 1.75,
        "awake grew too fast: {awakes:?} (not O(log log n)-shaped)"
    );
}

#[test]
fn luby_baseline_grows_with_log_n() {
    // Sanity for the comparison: Luby's awake complexity visibly grows
    // with n (it equals its round complexity).
    let mut rng = SmallRng::seed_from_u64(600);
    let mut awakes = Vec::new();
    for n in [64usize, 4096] {
        let g = generators::gnp_avg_degree(n, 8.0, &mut rng);
        let mut total = 0u64;
        for seed in 0..5 {
            let nodes = (0..n).map(|_| Luby::new()).collect();
            let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
            let states: Vec<MisState> = report.outputs.clone();
            check_mis(&g, &states).unwrap();
            total += report.metrics.awake_complexity();
        }
        awakes.push(total as f64 / 5.0);
    }
    assert!(awakes[1] > awakes[0], "Luby mean awake should grow: {awakes:?}");
}

#[test]
fn ablation_always_awake_comm_costs_more() {
    let mut rng = SmallRng::seed_from_u64(700);
    let g = generators::gnp(128, 0.06, &mut rng);
    let (outs_a, m_base) = run(&g, AwakeMisConfig::default(), 6);
    assert_valid("base", &g, &outs_a);
    let cfg = AwakeMisConfig { always_awake_comm: true, ..Default::default() };
    let (outs_b, m_abl) = run(&g, cfg, 6);
    assert_valid("ablation", &g, &outs_b);
    // Without the virtual-tree schedule every node attends all P
    // communication rounds: awake complexity explodes.
    assert!(
        m_abl.awake_complexity() >= 4 * m_base.awake_complexity(),
        "ablation {} vs base {}",
        m_abl.awake_complexity(),
        m_base.awake_complexity()
    );
}

#[test]
fn outputs_are_deterministic_per_seed() {
    let mut rng = SmallRng::seed_from_u64(800);
    let g = generators::gnp(64, 0.1, &mut rng);
    let (a, ma) = run(&g, AwakeMisConfig::default(), 7);
    let (b, mb) = run(&g, AwakeMisConfig::default(), 7);
    assert_eq!(a, b);
    assert_eq!(ma.awake_rounds, mb.awake_rounds);
    assert_eq!(ma.messages_sent, mb.messages_sent);
}

#[test]
fn congest_message_sizes_are_logarithmic() {
    let mut rng = SmallRng::seed_from_u64(900);
    let g = generators::gnp(256, 0.05, &mut rng);
    let (outs, m) = run(&g, AwakeMisConfig::default(), 8);
    assert_valid("congest", &g, &outs);
    // IDs live in [1, N^3]: every message must fit in O(log N) bits.
    let limit = 16 * (256f64.log2() as usize + 2);
    assert!(
        m.max_message_bits <= limit,
        "max message {} bits > {limit}",
        m.max_message_bits
    );
}
