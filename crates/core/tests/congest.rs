//! CONGEST-discipline regression: `Awake-MIS` messages must stay
//! `O(log n)` bits. The constant is pinned — measured maxima follow
//! `3·log₂(n_upper) + 8` bits on current code, and the test allows
//! `5·⌈log₂ n_upper⌉`, so a refactor that silently widens messages (an
//! extra ID, a fatter tag) trips the bound while normal drift does not.

use awake_mis_core::{check_mis, AwakeMis, AwakeMisConfig};
use graphgen::GraphFamily;
use sleeping_congest::{SimConfig, Simulator};

/// Pinned CONGEST constant: message bits ≤ `PINNED_C · ⌈log₂ n_upper⌉`.
const PINNED_C: usize = 5;

#[test]
fn awake_mis_message_bits_stay_logarithmic_across_seed_grid() {
    for family in [GraphFamily::Er, GraphFamily::Tree, GraphFamily::Grid] {
        for n in [256usize, 1024, 4096] {
            for seed in 1..=4u64 {
                let g = family.generate(n, seed);
                let n_upper = g.n(); // SimConfig defaults n_upper to n
                let nodes = (0..g.n()).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
                let report =
                    Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
                let states: Vec<_> = report.outputs.iter().map(|o| o.state).collect();
                assert!(check_mis(&g, &states).is_ok(), "{} n={n} seed={seed}", family.name());
                let log2_ceil = usize::BITS as usize - (n_upper - 1).leading_zeros() as usize;
                let budget = PINNED_C * log2_ceil;
                assert!(
                    report.metrics.max_message_bits <= budget,
                    "{} n={n} seed={seed}: {} bits exceeds {budget} (= {PINNED_C}·⌈log₂ {n_upper}⌉)",
                    family.name(),
                    report.metrics.max_message_bits,
                );
            }
        }
    }
}

#[test]
fn bit_limit_enforcement_matches_recorded_maximum() {
    // Running under a hard `bit_limit` exactly at the pinned budget must
    // succeed — i.e. the recorded maximum is the real maximum the engine
    // accounts, not an under-estimate.
    let n = 1024usize;
    let g = GraphFamily::Er.generate(n, 9);
    let log2_ceil = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let cfg = SimConfig { bit_limit: Some(PINNED_C * log2_ceil), ..SimConfig::seeded(9) };
    let nodes = (0..g.n()).map(|_| AwakeMis::new(AwakeMisConfig::default())).collect();
    let report = Simulator::new(g, nodes, cfg).run().expect("within CONGEST budget");
    assert!(report.metrics.max_message_bits <= PINNED_C * log2_ceil);
}
