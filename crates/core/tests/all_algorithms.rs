//! Differential property oracle over **all nine** MIS algorithms: for
//! arbitrary generated graphs and seeds, every algorithm's output must
//! pass both `check_mis` and `check_maximal`. The seed tests only cover
//! two algorithms this way; this test pins the full comparison surface
//! the experiment harness reports on — the worst-case algorithms of the
//! paper, the node-averaged entrants (`NA-MIS`, `GP-Avg-MIS`), and the
//! time/energy trade-off entrant (`LE-MIS`).

use awake_mis_core::ldt_mis::{LdtMis, LdtMisParams};
use awake_mis_core::{
    check_maximal, check_mis, AvgMis, AvgMisConfig, AwakeMis, AwakeMisConfig, LdtStrategy, LeMis,
    LeMisConfig, Luby, MisState, NaMis, NaMisConfig, NaiveGreedy, VtMis,
};
use graphgen::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sleeping_congest::{SimConfig, Simulator, Standalone};

/// Strategy: a random simple graph with up to `max_n` nodes, spanning
/// sparse to fairly dense regimes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n, any::<u64>(), 0.0f64..0.5).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        graphgen::generators::gnp(n, p, &mut rng)
    })
}

/// Runs one named algorithm and returns `(states, monte_carlo_failures)`.
fn run_one(name: &str, g: &Graph, seed: u64) -> (Vec<MisState>, usize) {
    let n = g.n();
    let cfg = SimConfig::seeded(seed);
    match name {
        "awake-mis" | "awake-mis-round" => {
            let acfg = if name == "awake-mis" {
                AwakeMisConfig::default()
            } else {
                AwakeMisConfig::round_efficient()
            };
            let nodes = (0..n).map(|_| AwakeMis::new(acfg)).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            (report.outputs.iter().map(|o| o.state).collect(), failures)
        }
        "luby" => {
            let nodes = (0..n).map(|_| Luby::new()).collect();
            (Simulator::new(g.clone(), nodes, cfg).run().expect(name).outputs, 0)
        }
        "vt-mis" => {
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x77));
            let nodes =
                (0..n).map(|v| Standalone::new(VtMis::new(ids[v], n as u64, None))).collect();
            (Simulator::new(g.clone(), nodes, cfg).run().expect(name).outputs, 0)
        }
        "naive-greedy" => {
            let mut ids: Vec<u64> = (1..=n as u64).collect();
            ids.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x77));
            let nodes = (0..n).map(|v| NaiveGreedy::new(ids[v], n as u64)).collect();
            (Simulator::new(g.clone(), nodes, cfg).run().expect(name).outputs, 0)
        }
        "ldt-mis" => {
            let id_upper = (n.max(4) as u64).pow(3).max(1 << 24);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let mut seen = std::collections::HashSet::new();
            let mut ids = Vec::with_capacity(n);
            while ids.len() < n {
                let id = rng.gen_range(1..=id_upper);
                if seen.insert(id) {
                    ids.push(id);
                }
            }
            let nodes = (0..n)
                .map(|v| {
                    Standalone::new(LdtMis::new(LdtMisParams {
                        my_id: ids[v],
                        id_upper,
                        k: n.max(1) as u32,
                        strategy: LdtStrategy::Awake,
                    }))
                })
                .collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            (report.outputs.iter().map(|o| o.state).collect(), failures)
        }
        "na-mis" => {
            let nodes = (0..n).map(|_| NaMis::new(NaMisConfig::default())).collect();
            (Simulator::new(g.clone(), nodes, cfg).run().expect(name).outputs, 0)
        }
        "gp-avg-mis" => {
            let nodes = (0..n).map(|_| AvgMis::new(AvgMisConfig::default())).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            (report.outputs.iter().map(|o| o.state).collect(), failures)
        }
        "le-mis" => {
            let nodes = (0..n).map(|_| LeMis::new(LeMisConfig::default())).collect();
            let report = Simulator::new(g.clone(), nodes, cfg).run().expect(name);
            let failures = report.outputs.iter().filter(|o| o.failed).count();
            (report.outputs.iter().map(|o| o.state).collect(), failures)
        }
        other => panic!("unknown algorithm {other}"),
    }
}

const ALL: [&str; 9] = [
    "awake-mis",
    "awake-mis-round",
    "ldt-mis",
    "vt-mis",
    "naive-greedy",
    "luby",
    "na-mis",
    "gp-avg-mis",
    "le-mis",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every algorithm yields a set passing the independence *and*
    /// maximality oracles on the same instance.
    #[test]
    fn all_algorithms_yield_valid_mis(g in arb_graph(36), seed in any::<u64>()) {
        for name in ALL {
            let (states, failures) = run_one(name, &g, seed);
            prop_assert_eq!(failures, 0, "{} reported Monte Carlo failures", name);
            prop_assert!(
                check_mis(&g, &states).is_ok(),
                "{} violated check_mis on n={}: {:?}",
                name, g.n(), check_mis(&g, &states)
            );
            prop_assert!(
                check_maximal(&g, &states).is_ok(),
                "{} violated check_maximal on n={}: {:?}",
                name, g.n(), check_maximal(&g, &states)
            );
        }
    }

    /// The two deterministic-order algorithms (VT-MIS and Naive-Greedy
    /// with the same ID permutation) must agree exactly: both compute the
    /// lexicographically-first MIS of that order. A true differential
    /// check, not just per-output validity.
    #[test]
    fn vt_mis_and_naive_greedy_agree(g in arb_graph(40), seed in any::<u64>()) {
        let (vt, _) = run_one("vt-mis", &g, seed);
        let (naive, _) = run_one("naive-greedy", &g, seed);
        prop_assert_eq!(vt, naive, "LFMIS differs between VT-MIS and Naive-Greedy");
    }
}
