//! Port-numbered graphs and workload generators for distributed-algorithm
//! simulation.
//!
//! This crate provides the network substrate used by the
//! [`sleeping-congest`](../sleeping_congest/index.html) simulator and the
//! MIS algorithms built on top of it:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of a
//!   simple undirected graph with *port numbering*: each node's incident
//!   edges are numbered `0..degree`, and for every directed half-edge the
//!   reverse port at the other endpoint is precomputed. Port numbering is
//!   exactly the communication interface assumed by the CONGEST model of
//!   Dufoulon–Moses–Pandurangan (PODC 2023), §1.3.
//! * [`generators`] — workload generators: Erdős–Rényi, random geometric,
//!   Barabási–Albert, random regular, uniform random trees, stochastic
//!   block models, and a family of structured graphs (paths, cycles,
//!   cliques, stars, grids, tori, hypercubes, …).
//! * [`props`] — graph measurements (degrees, connected components,
//!   degeneracy) used by the experiment harness.
//! * [`families`] — named generator presets ([`GraphFamily`]) so
//!   experiment grids can iterate workloads as plain data and regenerate
//!   any instance from `(family, n, seed)`.
//! * [`delta`] — dynamic-graph support: [`DeltaBatch`] topology deltas,
//!   [`Graph::apply_deltas`] with stable ports for untouched nodes, and
//!   the [`DynGraph`] wrapper tracking an active-node mask.
//!
//! # Example
//!
//! ```
//! use graphgen::{Graph, generators};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let g = generators::gnp(100, 0.05, &mut rng);
//! assert_eq!(g.n(), 100);
//! for v in 0..g.n() as u32 {
//!     for port in 0..g.degree(v) as u32 {
//!         let (u, back) = g.endpoint(v, port);
//!         // The reverse port at `u` leads back to `v`.
//!         assert_eq!(g.endpoint(u, back).0, v);
//!     }
//! }
//! ```

pub mod delta;
pub mod families;
pub mod generators;
pub mod graph;
pub mod io;
pub mod products;
pub mod props;

pub use delta::{AppliedDelta, DeltaBatch, DeltaError, DynGraph};
pub use families::GraphFamily;
pub use graph::{Graph, GraphError, NodeId, Port};
