//! Topology deltas for dynamic graphs.
//!
//! A [`DeltaBatch`] collects edge insertions/deletions and node
//! additions/removals; [`Graph::apply_deltas`] rebuilds the CSR
//! incrementally — untouched nodes' neighbor slices are copied verbatim
//! (no re-sort), so their **ports are stable**: ports are indices into
//! the sorted neighbor list, and a node whose list did not change keeps
//! every port meaning exactly what it meant before. Only the reverse
//! ports are recomputed, by the same shared linear pass every
//! construction path uses ([`Graph::from_sorted_halves`] /
//! [`Graph::from_csr_parts`]).
//!
//! Node ids are **stable**: removing a node does not renumber anyone.
//! At the [`Graph`] level a removed node simply becomes isolated; the
//! [`DynGraph`] wrapper adds the *active* mask that distinguishes a
//! deliberately removed node from a merely isolated one, which is what
//! survivor-aware MIS verification consumes. New nodes append fresh ids
//! at the end (`n..n+k`).
//!
//! Deltas are idempotent in the delta-CRDT style: inserting an edge
//! that already exists or deleting one that does not is a no-op, not an
//! error — what *was applied* comes back in the [`AppliedDelta`] so
//! callers (incremental MIS repair) see only the effective changes.
//! Structural contradictions are errors: self loops, out-of-range
//! endpoints, the same edge both inserted and deleted in one batch, and
//! inserting an edge at a node the same batch removes.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Error returned when a [`DeltaBatch`] cannot be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge endpoint is outside the post-batch id space.
    EndpointOutOfRange {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// The post-batch node count it was checked against.
        n: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
    /// A removed node id is `>= n` (nodes added by the same batch
    /// cannot be removed by it).
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The pre-batch node count it was checked against.
        n: usize,
    },
    /// The same edge appears in both the insert and the delete list.
    InsertDeleteConflict((NodeId, NodeId)),
    /// An inserted edge touches a node the same batch removes.
    EdgeToRemovedNode {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// The endpoint being removed.
        node: NodeId,
    },
    /// An inserted edge touches a node that was removed earlier
    /// ([`DynGraph`] only — plain graphs have no notion of inactive).
    InactiveEndpoint {
        /// The offending edge.
        edge: (NodeId, NodeId),
        /// The inactive endpoint.
        node: NodeId,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::EndpointOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) has endpoint out of range (n = {n})", edge.0, edge.1)
            }
            DeltaError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            DeltaError::NodeOutOfRange { node, n } => {
                write!(f, "removed node {node} out of range (n = {n})")
            }
            DeltaError::InsertDeleteConflict(e) => {
                write!(f, "edge ({}, {}) both inserted and deleted in one batch", e.0, e.1)
            }
            DeltaError::EdgeToRemovedNode { edge, node } => write!(
                f,
                "edge ({}, {}) inserted at node {node}, which the same batch removes",
                edge.0, edge.1
            ),
            DeltaError::InactiveEndpoint { edge, node } => write!(
                f,
                "edge ({}, {}) inserted at node {node}, which was removed earlier",
                edge.0, edge.1
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch of topology deltas, collected through the builder methods
/// and validated + deduplicated when applied.
///
/// # Example
///
/// ```
/// # use graphgen::{Graph, delta::DeltaBatch};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// let mut batch = DeltaBatch::new();
/// batch.insert_edge(0, 3).delete_edge(1, 2).add_nodes(1).remove_node(2);
/// let (g2, applied) = g.apply_deltas(&batch)?;
/// assert_eq!(g2.n(), 5);
/// assert!(g2.has_edge(0, 3));
/// assert_eq!(g2.degree(2), 0); // removed node: isolated, id kept
/// assert_eq!(applied.added, vec![4]);
/// // The (2,3) edge went away implicitly with node 2's removal.
/// assert_eq!(applied.deleted, vec![(1, 2), (2, 3)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    insert_edges: Vec<(NodeId, NodeId)>,
    delete_edges: Vec<(NodeId, NodeId)>,
    add_nodes: usize,
    remove_nodes: Vec<NodeId>,
}

/// Canonical (undirected) form of an edge: `(min, max)`.
fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    (u.min(v), u.max(v))
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Queues an edge insertion (either orientation).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> &mut DeltaBatch {
        self.insert_edges.push(canon(u, v));
        self
    }

    /// Queues an edge deletion (either orientation).
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> &mut DeltaBatch {
        self.delete_edges.push(canon(u, v));
        self
    }

    /// Queues `k` node additions; the new ids are `n..n+k` in order.
    pub fn add_nodes(&mut self, k: usize) -> &mut DeltaBatch {
        self.add_nodes += k;
        self
    }

    /// Queues a node removal. The node keeps its id but loses every
    /// incident edge (and, under [`DynGraph`], its active status).
    pub fn remove_node(&mut self, v: NodeId) -> &mut DeltaBatch {
        self.remove_nodes.push(v);
        self
    }

    /// Whether the batch holds no operations at all.
    pub fn is_empty(&self) -> bool {
        self.insert_edges.is_empty()
            && self.delete_edges.is_empty()
            && self.add_nodes == 0
            && self.remove_nodes.is_empty()
    }

    /// Number of queued operations (before dedup/idempotence filtering).
    pub fn ops(&self) -> usize {
        self.insert_edges.len()
            + self.delete_edges.len()
            + self.add_nodes
            + self.remove_nodes.len()
    }

    /// The queued edge insertions, canonicalized `(min, max)`.
    pub fn insert_edges(&self) -> &[(NodeId, NodeId)] {
        &self.insert_edges
    }

    /// The queued edge deletions, canonicalized `(min, max)`.
    pub fn delete_edges(&self) -> &[(NodeId, NodeId)] {
        &self.delete_edges
    }

    /// The number of queued node additions.
    pub fn added_count(&self) -> usize {
        self.add_nodes
    }

    /// The queued node removals, as given.
    pub fn remove_nodes(&self) -> &[NodeId] {
        &self.remove_nodes
    }
}

/// What a [`DeltaBatch`] actually changed: the *effective* deltas after
/// validation, deduplication, and idempotence filtering. Every list is
/// sorted; edges are canonical `(min, max)`. This is the input the
/// incremental MIS repair consumes to compute its damage frontier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedDelta {
    /// Edges that were actually created.
    pub inserted: Vec<(NodeId, NodeId)>,
    /// Edges that were actually dropped — explicit deletions of edges
    /// that existed, plus every edge implicitly lost to a node removal.
    pub deleted: Vec<(NodeId, NodeId)>,
    /// Ids of the nodes the batch appended.
    pub added: Vec<NodeId>,
    /// Nodes that were removed (their ids survive, isolated).
    pub removed: Vec<NodeId>,
}

impl AppliedDelta {
    /// Whether nothing effectively changed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.deleted.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
    }

    /// Total number of effective deltas.
    pub fn ops(&self) -> usize {
        self.inserted.len() + self.deleted.len() + self.added.len() + self.removed.len()
    }
}

impl Graph {
    /// Applies a delta batch, returning the new graph and the effective
    /// changes. Node ids are stable; removed nodes become isolated; new
    /// nodes take ids `n..n+k`. Untouched nodes keep their neighbor
    /// slices (and therefore their ports) verbatim — the CSR is rebuilt
    /// by per-node merge, not by a global re-sort.
    ///
    /// # Errors
    ///
    /// See [`DeltaError`]: out-of-range endpoints, self loops,
    /// insert/delete conflicts, and inserts at removed nodes.
    pub fn apply_deltas(&self, batch: &DeltaBatch) -> Result<(Graph, AppliedDelta), DeltaError> {
        let n = self.n();
        let n_new = n + batch.add_nodes;

        // Validate + canonicalize the node removals.
        let mut removed: Vec<NodeId> = batch.remove_nodes.clone();
        removed.sort_unstable();
        removed.dedup();
        if let Some(&v) = removed.iter().find(|&&v| v as usize >= n) {
            return Err(DeltaError::NodeOutOfRange { node: v, n });
        }
        let mut is_removed = vec![false; n_new];
        for &v in &removed {
            is_removed[v as usize] = true;
        }

        // Validate + canonicalize the edge lists.
        let check = |edges: &[(NodeId, NodeId)]| -> Result<Vec<(NodeId, NodeId)>, DeltaError> {
            let mut out = Vec::with_capacity(edges.len());
            for &(a, b) in edges {
                if a == b {
                    return Err(DeltaError::SelfLoop(a));
                }
                if a as usize >= n_new || b as usize >= n_new {
                    return Err(DeltaError::EndpointOutOfRange { edge: (a, b), n: n_new });
                }
                out.push(canon(a, b));
            }
            out.sort_unstable();
            out.dedup();
            Ok(out)
        };
        let ins = check(&batch.insert_edges)?;
        let del = check(&batch.delete_edges)?;
        if let Some(&e) = ins.iter().find(|e| del.binary_search(e).is_ok()) {
            return Err(DeltaError::InsertDeleteConflict(e));
        }
        for &(a, b) in &ins {
            for v in [a, b] {
                if is_removed[v as usize] {
                    return Err(DeltaError::EdgeToRemovedNode { edge: (a, b), node: v });
                }
            }
        }

        // Idempotence filtering: keep only inserts of absent edges and
        // deletes of present ones. Endpoints at `>= n` have no edges yet.
        let present =
            |&(a, b): &(NodeId, NodeId)| (a as usize) < n && (b as usize) < n && self.has_edge(a, b);
        let inserted: Vec<(NodeId, NodeId)> = ins.into_iter().filter(|e| !present(e)).collect();
        let mut deleted: Vec<(NodeId, NodeId)> = del.into_iter().filter(present).collect();
        // Node removals implicitly delete every incident edge.
        for &v in &removed {
            for &u in self.neighbors(v) {
                deleted.push(canon(v, u));
            }
        }
        deleted.sort_unstable();
        deleted.dedup();

        // Per-node effective delta lists, touched nodes only — an
        // untouched node's slice is copied verbatim below, which is what
        // keeps its ports stable.
        let mut touched: HashMap<NodeId, (Vec<NodeId>, Vec<NodeId>)> = HashMap::new();
        for &(a, b) in &inserted {
            touched.entry(a).or_default().0.push(b);
            touched.entry(b).or_default().0.push(a);
        }
        for &(a, b) in &deleted {
            touched.entry(a).or_default().1.push(b);
            touched.entry(b).or_default().1.push(a);
        }

        let half_count = (self.m() + inserted.len()).saturating_sub(deleted.len()) * 2;
        let mut offsets = Vec::with_capacity(n_new + 1);
        let mut targets: Vec<NodeId> = Vec::with_capacity(half_count);
        offsets.push(0usize);
        for v in 0..n_new as NodeId {
            let old: &[NodeId] = if (v as usize) < n { self.neighbors(v) } else { &[] };
            match touched.get_mut(&v) {
                None => targets.extend_from_slice(old),
                Some((adds, dels)) => {
                    adds.sort_unstable();
                    dels.sort_unstable();
                    // Merge: old neighbors minus dels, interleaved with
                    // adds, both ascending — output stays sorted.
                    let mut ai = 0;
                    let mut di = 0;
                    for &u in old {
                        while ai < adds.len() && adds[ai] < u {
                            targets.push(adds[ai]);
                            ai += 1;
                        }
                        if di < dels.len() && dels[di] == u {
                            di += 1;
                        } else {
                            targets.push(u);
                        }
                    }
                    targets.extend_from_slice(&adds[ai..]);
                }
            }
            offsets.push(targets.len());
        }

        let added: Vec<NodeId> = (n as NodeId..n_new as NodeId).collect();
        let applied = AppliedDelta { inserted, deleted, added, removed };
        Ok((Graph::from_csr_parts(offsets, targets), applied))
    }
}

/// A mutable graph with stable node ids and an *active* mask.
///
/// Removed nodes stay in the id space as inactive, isolated nodes; the
/// mask is exactly the `alive` vector survivor-aware MIS verification
/// (`check_mis_survivors`) consumes, so a removed node is exempt from
/// both independence and domination requirements. Re-inserting edges at
/// an inactive node is rejected — removal is permanent; growth happens
/// through fresh ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynGraph {
    graph: Graph,
    active: Vec<bool>,
    active_count: usize,
}

impl DynGraph {
    /// Wraps a static graph; every node starts active.
    pub fn new(graph: Graph) -> DynGraph {
        let n = graph.n();
        DynGraph { graph, active: vec![true; n], active_count: n }
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The active mask (`true` = node participates).
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Whether `v` is active.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v as usize]
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Total id-space size (active + removed).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Applies a batch: removals of already-inactive nodes are no-ops
    /// (idempotent), inserts at inactive nodes are errors, everything
    /// else delegates to [`Graph::apply_deltas`]. Returns the effective
    /// changes.
    ///
    /// # Errors
    ///
    /// [`DeltaError::InactiveEndpoint`] for inserts at removed nodes,
    /// plus everything [`Graph::apply_deltas`] rejects.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<AppliedDelta, DeltaError> {
        for &(a, b) in &batch.insert_edges {
            for v in [a, b] {
                if (v as usize) < self.active.len() && !self.active[v as usize] {
                    return Err(DeltaError::InactiveEndpoint { edge: (a, b), node: v });
                }
            }
        }
        // Idempotence: drop removals of nodes that are already inactive.
        let needs_filter =
            batch.remove_nodes.iter().any(|&v| (v as usize) < self.active.len() && !self.active[v as usize]);
        let filtered;
        let effective = if needs_filter {
            filtered = DeltaBatch {
                insert_edges: batch.insert_edges.clone(),
                delete_edges: batch.delete_edges.clone(),
                add_nodes: batch.add_nodes,
                remove_nodes: batch
                    .remove_nodes
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) >= self.active.len() || self.active[v as usize])
                    .collect(),
            };
            &filtered
        } else {
            batch
        };
        let (graph, applied) = self.graph.apply_deltas(effective)?;
        self.graph = graph;
        self.active.resize(self.graph.n(), true);
        for &v in &applied.removed {
            self.active[v as usize] = false;
        }
        self.active_count = self.active_count + applied.added.len() - applied.removed.len();
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap()
    }

    #[test]
    fn edge_insert_and_delete() {
        let g = cycle5();
        let mut b = DeltaBatch::new();
        b.insert_edge(0, 2).delete_edge(3, 4);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        assert!(g2.has_edge(0, 2));
        assert!(!g2.has_edge(3, 4));
        assert_eq!(g2.m(), g.m()); // one in, one out
        assert_eq!(applied.inserted, vec![(0, 2)]);
        assert_eq!(applied.deleted, vec![(3, 4)]);
        assert!(applied.added.is_empty() && applied.removed.is_empty());
    }

    #[test]
    fn idempotent_deltas_are_no_ops() {
        let g = cycle5();
        let mut b = DeltaBatch::new();
        b.insert_edge(0, 1).insert_edge(1, 0).delete_edge(0, 2).delete_edge(2, 0);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        assert_eq!(g2, g);
        assert!(applied.is_empty());
        assert_eq!(applied.ops(), 0);
    }

    #[test]
    fn node_add_and_remove() {
        let g = cycle5();
        let mut b = DeltaBatch::new();
        b.add_nodes(2).insert_edge(5, 6).insert_edge(0, 5).remove_node(2).remove_node(2);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        assert_eq!(g2.n(), 7);
        assert_eq!(g2.degree(2), 0);
        assert!(g2.has_edge(5, 6) && g2.has_edge(0, 5));
        assert!(!g2.has_edge(1, 2) && !g2.has_edge(2, 3));
        assert_eq!(applied.added, vec![5, 6]);
        assert_eq!(applied.removed, vec![2]); // deduplicated
        assert_eq!(applied.deleted, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn validation_rejects_contradictions() {
        let g = cycle5();
        let mut b = DeltaBatch::new();
        b.insert_edge(1, 1);
        assert_eq!(g.apply_deltas(&b), Err(DeltaError::SelfLoop(1)));

        let mut b = DeltaBatch::new();
        b.insert_edge(0, 9);
        assert!(matches!(g.apply_deltas(&b), Err(DeltaError::EndpointOutOfRange { .. })));

        let mut b = DeltaBatch::new();
        b.insert_edge(0, 2).delete_edge(2, 0);
        assert_eq!(g.apply_deltas(&b), Err(DeltaError::InsertDeleteConflict((0, 2))));

        let mut b = DeltaBatch::new();
        b.remove_node(7);
        assert!(matches!(g.apply_deltas(&b), Err(DeltaError::NodeOutOfRange { .. })));

        let mut b = DeltaBatch::new();
        b.remove_node(2).insert_edge(2, 4);
        assert!(matches!(g.apply_deltas(&b), Err(DeltaError::EdgeToRemovedNode { .. })));
    }

    #[test]
    fn untouched_nodes_keep_their_ports() {
        // A denser graph where several nodes stay untouched.
        let g = Graph::from_edges(
            8,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0), (1, 6)],
        )
        .unwrap();
        let mut b = DeltaBatch::new();
        b.insert_edge(3, 7).delete_edge(4, 5).add_nodes(1).insert_edge(2, 8);
        let (g2, _) = g.apply_deltas(&b).unwrap();
        // Touched: 3, 7 (insert), 4, 5 (delete), 2, 8 (insert). Nodes
        // 0, 1, 6 are untouched: identical neighbor lists, and every
        // port resolves to the same (neighbor, reverse-port-target)
        // pair as before.
        for v in [0u32, 1, 6] {
            assert_eq!(g.neighbors(v), g2.neighbors(v), "node {v} neighbor list drifted");
            for p in 0..g.degree(v) as u32 {
                let (u_old, _) = g.endpoint(v, p);
                let (u_new, q_new) = g2.endpoint(v, p);
                assert_eq!(u_old, u_new, "node {v} port {p} re-targeted");
                // The reverse port round-trips in the new graph.
                assert_eq!(g2.endpoint(u_new, q_new), (v, p));
            }
        }
        // And the rebuilt graph equals a from-scratch construction.
        let mut edges: Vec<(NodeId, NodeId)> =
            g.edges().filter(|&e| e != (4, 5)).collect();
        edges.push((3, 7));
        edges.push((2, 8));
        assert_eq!(g2, Graph::from_edges(9, &edges).unwrap());
    }

    #[test]
    fn dyn_graph_tracks_active_mask() {
        let mut d = DynGraph::new(cycle5());
        assert_eq!(d.active_count(), 5);
        let mut b = DeltaBatch::new();
        b.remove_node(1).add_nodes(1).insert_edge(0, 5);
        let applied = d.apply(&b).unwrap();
        assert_eq!(applied.removed, vec![1]);
        assert_eq!(d.n(), 6);
        assert_eq!(d.active_count(), 5);
        assert!(!d.is_active(1) && d.is_active(5));

        // Removing an inactive node again is a no-op, not an error.
        let mut b = DeltaBatch::new();
        b.remove_node(1);
        let applied = d.apply(&b).unwrap();
        assert!(applied.is_empty());
        assert_eq!(d.active_count(), 5);

        // Inserting at an inactive node is rejected.
        let mut b = DeltaBatch::new();
        b.insert_edge(1, 3);
        assert!(matches!(d.apply(&b), Err(DeltaError::InactiveEndpoint { node: 1, .. })));
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = cycle5();
        let (g2, applied) = g.apply_deltas(&DeltaBatch::new()).unwrap();
        assert_eq!(g2, g);
        assert!(applied.is_empty());
        assert!(DeltaBatch::new().is_empty());
    }

    #[test]
    fn delete_to_empty_and_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut b = DeltaBatch::new();
        b.delete_edge(0, 1).delete_edge(1, 2).delete_edge(0, 2);
        let (g2, applied) = g.apply_deltas(&b).unwrap();
        assert_eq!(g2.m(), 0);
        assert_eq!(g2.n(), 3);
        assert_eq!(applied.deleted.len(), 3);
        // And back up from nothing.
        let mut b = DeltaBatch::new();
        b.insert_edge(0, 1);
        let (g3, _) = g2.apply_deltas(&b).unwrap();
        assert!(g3.has_edge(0, 1));
        assert_eq!(g3.degree(2), 0);
    }
}
