//! Derived graphs: line graphs and the MIS→coloring product.
//!
//! These power the paper's concluding open direction — *"design
//! algorithms for other symmetry breaking problems such as maximal
//! matching, coloring"* — via the classical reductions: a maximal
//! matching of `G` is an MIS of the line graph `L(G)`, and an MIS of
//! `G □ K_{Δ+1}` (one clique per node, one "parallel" edge per color
//! class) assigns every node exactly one color of a proper
//! `(Δ+1)`-coloring.

use crate::graph::{Graph, NodeId};

/// The line graph `L(G)`: one node per edge of `G`, adjacent iff the
/// edges share an endpoint. Returns the line graph and the map from
/// line-graph node id to the original edge `(u, v)` (with `u < v`).
///
/// The construction is `O(Σ_v deg(v)²)` — the number of line-graph
/// edges.
pub fn line_graph(g: &Graph) -> (Graph, Vec<(NodeId, NodeId)>) {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut edge_id = std::collections::HashMap::with_capacity(edges.len());
    for (i, &e) in edges.iter().enumerate() {
        edge_id.insert(e, i as NodeId);
    }
    let mut ledges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 0..g.n() as NodeId {
        let nb = g.neighbors(v);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                let a = edge_id[&(v.min(nb[i]), v.max(nb[i]))];
                let b = edge_id[&(v.min(nb[j]), v.max(nb[j]))];
                ledges.push((a.min(b), a.max(b)));
            }
        }
    }
    let lg = Graph::from_edges(edges.len(), &ledges).expect("line graph is valid");
    (lg, edges)
}

/// Linial's coloring product: the graph on nodes `(v, c)` for
/// `c ∈ 0..palette` with
///
/// * a clique over `{(v, 0), …, (v, palette−1)}` for every `v`, and
/// * an edge `(v, c) — (u, c)` for every edge `{u, v}` of `G` and every
///   color `c`.
///
/// An MIS of this product contains **exactly one** `(v, c)` per node
/// `v` whenever `palette ≥ Δ(G) + 1`, and the selected colors form a
/// proper coloring of `G`. Product node ids are `v * palette + c`.
///
/// # Panics
///
/// Panics if `palette == 0`.
pub fn coloring_product(g: &Graph, palette: usize) -> Graph {
    assert!(palette >= 1, "palette must be non-empty");
    let n = g.n();
    let id = |v: NodeId, c: usize| v * palette as NodeId + c as NodeId;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for v in 0..n as NodeId {
        for c1 in 0..palette {
            for c2 in (c1 + 1)..palette {
                edges.push((id(v, c1), id(v, c2)));
            }
        }
    }
    for (u, v) in g.edges() {
        for c in 0..palette {
            edges.push((id(u, c), id(v, c)));
        }
    }
    Graph::from_edges(n * palette, &edges).expect("coloring product is valid")
}

/// The complete bipartite graph `K_{a,b}` (left part first).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as NodeId {
        for v in 0..b as NodeId {
            edges.push((u, a as NodeId + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("biclique is valid")
}

/// A barbell: two `K_k` cliques joined by a path of `bridge` extra
/// nodes — a classic "hard to shatter locally" shape.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let mut edges = Vec::new();
    let clique = |base: NodeId, edges: &mut Vec<(NodeId, NodeId)>| {
        for i in 0..k as NodeId {
            for j in (i + 1)..k as NodeId {
                edges.push((base + i, base + j));
            }
        }
    };
    clique(0, &mut edges);
    let right = (k + bridge) as NodeId;
    clique(right, &mut edges);
    // Bridge path from node k-1 through bridge nodes to node `right`.
    let mut prev = (k - 1) as NodeId;
    for b in 0..bridge as NodeId {
        edges.push((prev, k as NodeId + b));
        prev = k as NodeId + b;
    }
    edges.push((prev, right));
    Graph::from_edges(2 * k + bridge, &edges).expect("barbell is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn line_graph_of_path() {
        // P4 has 3 edges forming a path in the line graph.
        let (lg, map) = line_graph(&generators::path(4));
        assert_eq!(lg.n(), 3);
        assert_eq!(lg.m(), 2);
        assert_eq!(map, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        let (lg, _) = line_graph(&generators::star(5));
        assert_eq!(lg.n(), 4);
        assert_eq!(lg.m(), 6); // K4
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let (lg, _) = line_graph(&generators::cycle(3));
        assert_eq!(lg.n(), 3);
        assert_eq!(lg.m(), 3);
    }

    #[test]
    fn coloring_product_shape() {
        let g = generators::path(3); // Δ = 2, palette 3
        let p = coloring_product(&g, 3);
        assert_eq!(p.n(), 9);
        // 3 cliques of K3 (3 edges each) + 2 edges × 3 colors.
        assert_eq!(p.m(), 9 + 6);
        // (v=0,c=0) is adjacent to (v=1,c=0) and its own clique.
        assert!(p.has_edge(0, 3));
        assert!(p.has_edge(0, 1));
        assert!(!p.has_edge(0, 4)); // different node, different color
    }

    #[test]
    fn bipartite_and_barbell() {
        let b = complete_bipartite(3, 4);
        assert_eq!(b.n(), 7);
        assert_eq!(b.m(), 12);
        assert!(!b.has_edge(0, 1)); // same side

        let bb = barbell(4, 2);
        assert_eq!(bb.n(), 10);
        assert_eq!(bb.m(), 6 + 6 + 3);
        assert!(crate::props::is_connected(&bb));
    }
}
