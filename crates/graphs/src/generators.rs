//! Workload generators.
//!
//! All random generators take an explicit `&mut impl Rng` so that every
//! experiment in the harness is reproducible from a master seed.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi graph `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if p == 0.0 || n < 2 {
        return Graph::empty(n);
    }
    let mut edges = Vec::new();
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, &edges).expect("complete graph is valid");
    }
    // Iterate over the upper triangle with geometric jumps.
    let lq = (1.0 - p).ln();
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / lq).floor() as u64 + 1;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx > total {
            break;
        }
        let (u, v) = unrank_pair(n as u64, idx - 1);
        edges.push((u as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges).expect("gnp edges are valid")
}

/// Maps a rank in `0..n(n-1)/2` to the pair `(u, v)`, `u < v`, in
/// lexicographic order.
fn unrank_pair(n: u64, rank: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... solve incrementally with
    // a numeric first guess to stay O(1).
    let mut u = {
        // Approximate inverse of f(u) = u*(2n - u - 1)/2.
        let nn = n as f64;
        let r = rank as f64;
        let disc = (2.0 * nn - 1.0) * (2.0 * nn - 1.0) - 8.0 * r;
        (((2.0 * nn - 1.0) - disc.max(0.0).sqrt()) / 2.0).floor().max(0.0) as u64
    };
    let row_start = |u: u64| u * (2 * n - u - 1) / 2;
    while u > 0 && row_start(u) > rank {
        u -= 1;
    }
    while row_start(u + 1) <= rank {
        u += 1;
    }
    let v = u + 1 + (rank - row_start(u));
    (u, v)
}

/// Erdős–Rényi graph with expected average degree `d`: `G(n, d/(n-1))`.
pub fn gnp_avg_degree(n: usize, d: f64, rng: &mut impl Rng) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    gnp(n, (d / (n as f64 - 1.0)).min(1.0), rng)
}

/// `G(n, m)`: exactly `m` distinct edges chosen uniformly at random.
///
/// # Panics
///
/// Panics if `m` exceeds the number of pairs.
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    let total = n as u64 * (n as u64 - 1) / 2;
    assert!(m as u64 <= total, "m = {m} exceeds the {total} available pairs");
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let rank = rng.gen_range(0..total);
        if chosen.insert(rank) {
            let (u, v) = unrank_pair(n as u64, rank);
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(n, &edges).expect("gnm edges are valid")
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance `<= radius`.
///
/// This is the canonical model of a wireless sensor network deployment,
/// the motivating setting of the sleeping model (paper §1.2).
pub fn random_geometric(n: usize, radius: f64, rng: &mut impl Rng) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let cell = radius.max(1e-9);
    let cells = (1.0 / cell).ceil().max(1.0) as i64;
    let mut grid: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let key = (((x / cell) as i64).min(cells - 1), ((y / cell) as i64).min(cells - 1));
        grid.entry(key).or_default().push(i);
    }
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for (&(cx, cy), bucket) in &grid {
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(other) = grid.get(&(cx + dx, cy + dy)) else { continue };
                for &i in bucket {
                    for &j in other {
                        if i < j {
                            let (xi, yi) = pts[i];
                            let (xj, yj) = pts[j];
                            let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                            if d2 <= r2 {
                                edges.push((i as NodeId, j as NodeId));
                            }
                        }
                    }
                }
            }
        }
    }
    Graph::from_edges(n, &edges).expect("rgg edges are valid")
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes chosen proportionally to degree.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "n must be at least m + 1");
    // Seed with a star on m+1 nodes, then attach by sampling from the
    // repeated-endpoints list (each endpoint appears once per incident
    // half-edge, which realizes degree-proportional sampling).
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(4 * n * m);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m);
    for v in 1..=m as NodeId {
        edges.push((0, v));
        endpoints.extend_from_slice(&[0, v]);
    }
    for v in (m as NodeId + 1)..n as NodeId {
        // Deduplicate in draw order: the endpoint pool grows in the order
        // targets are attached, so iterating a `HashSet` here would make
        // the graph depend on hash-seed iteration order and break
        // seed-reproducibility across processes.
        let mut picked: Vec<NodeId> = Vec::with_capacity(m);
        while picked.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((v, t));
            endpoints.extend_from_slice(&[v, t]);
        }
    }
    Graph::from_edges(n, &edges).expect("ba edges are valid")
}

/// Random `d`-regular graph via the configuration model with local
/// swap repair (full restarts have vanishing success probability for
/// `d ≳ 6`; instead, stubs of colliding pairs are reshuffled together
/// with an equal number of good pairs until the pairing is simple).
///
/// # Panics
///
/// Panics if `n * d` is odd, `d >= n`, or the repair loop fails to
/// converge (which indicates a parameterization so tight that a simple
/// `d`-regular graph can barely exist).
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Graph {
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    assert!(d < n, "d must be < n");
    if d == 0 {
        return Graph::empty(n);
    }
    let mut stubs: Vec<NodeId> =
        (0..n as NodeId).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    for _attempt in 0..10_000 {
        let mut seen = std::collections::HashSet::with_capacity(n * d);
        let mut bad_pairs: Vec<usize> = Vec::new();
        let mut good_pairs: Vec<usize> = Vec::new();
        for i in 0..stubs.len() / 2 {
            let (a, b) = (stubs[2 * i], stubs[2 * i + 1]);
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                bad_pairs.push(i);
            } else {
                good_pairs.push(i);
            }
        }
        if bad_pairs.is_empty() {
            let edges: Vec<(NodeId, NodeId)> =
                stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
            return Graph::from_edges(n, &edges).expect("regular edges are valid");
        }
        // Reshuffle the stubs of every bad pair together with an equal
        // number of random good pairs.
        good_pairs.shuffle(rng);
        let mut positions: Vec<usize> = Vec::with_capacity(bad_pairs.len() * 4);
        for &i in bad_pairs.iter().chain(good_pairs.iter().take(bad_pairs.len())) {
            positions.push(2 * i);
            positions.push(2 * i + 1);
        }
        for k in (1..positions.len()).rev() {
            let j = rng.gen_range(0..=k);
            stubs.swap(positions[k], positions[j]);
        }
    }
    panic!("random_regular({n}, {d}) failed to converge");
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).unwrap();
    }
    let seq: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n as NodeId)).collect();
    let mut degree = vec![1u32; n];
    for &v in &seq {
        degree[v as usize] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n as NodeId)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer invariant");
        edges.push((leaf, v));
        degree[v as usize] -= 1;
        if degree[v as usize] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().unwrap();
    let std::cmp::Reverse(b) = leaves.pop().unwrap();
    edges.push((a, b));
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// Stochastic block model: nodes are split into `blocks.len()` groups of
/// the given sizes; intra-block pairs are edges with probability `p_in`,
/// inter-block pairs with probability `p_out`.
pub fn sbm(blocks: &[usize], p_in: f64, p_out: f64, rng: &mut impl Rng) -> Graph {
    let n: usize = blocks.iter().sum();
    let mut label = Vec::with_capacity(n);
    for (b, &sz) in blocks.iter().enumerate() {
        label.extend(std::iter::repeat_n(b, sz));
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if label[u] == label[v] { p_in } else { p_out };
            if rng.gen_bool(p) {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("sbm edges are valid")
}

/// Path `0 – 1 – … – n-1`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges).expect("path is valid")
}

/// Cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    edges.push((n as NodeId - 1, 0));
    Graph::from_edges(n, &edges).expect("cycle is valid")
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("clique is valid")
}

/// Star: node 0 is the hub connected to all others.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n as NodeId).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("star is valid")
}

/// `w × h` grid with 4-neighborhoods.
pub fn grid(w: usize, h: usize) -> Graph {
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("grid is valid")
}

/// `w × h` torus (grid with wraparound); requires `w, h >= 3` to stay
/// simple.
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            edges.push((id(x, y), id((x + 1) % w, y)));
            edges.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    Graph::from_edges(w * h, &edges).expect("torus is valid")
}

/// Hypercube on `2^dim` nodes.
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v as NodeId, u as NodeId));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube is valid")
}

/// Complete binary tree with the given number of nodes (heap layout:
/// children of `v` are `2v+1` and `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((((v - 1) / 2) as NodeId, v as NodeId));
    }
    Graph::from_edges(n, &edges).expect("binary tree is valid")
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaf
/// nodes attached — a tree whose LDT depth and degree stress different
/// code paths than stars or paths alone.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar needs a spine");
    let mut edges = Vec::with_capacity(spine - 1 + spine * legs);
    for v in 1..spine as NodeId {
        edges.push((v - 1, v));
    }
    let mut next = spine as NodeId;
    for v in 0..spine as NodeId {
        for _ in 0..legs {
            edges.push((v, next));
            next += 1;
        }
    }
    Graph::from_edges(spine + spine * legs, &edges).expect("caterpillar is valid")
}

/// Disjoint union of graphs (node ids of later graphs are shifted).
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(|g| g.n()).sum();
    let mut edges = Vec::new();
    let mut base = 0 as NodeId;
    for g in parts {
        for (u, v) in g.edges() {
            edges.push((base + u, base + v));
        }
        base += g.n() as NodeId;
    }
    Graph::from_edges(n, &edges).expect("union is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn unrank_pair_is_lexicographic() {
        let n = 6u64;
        let mut rank = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(unrank_pair(n, rank), (u, v), "rank {rank}");
                rank += 1;
            }
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
        assert_eq!(gnp(1, 0.5, &mut r).n(), 1);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut r = rng();
        let g = gnp(300, 0.1, &mut r);
        let expected = 0.1 * 300.0 * 299.0 / 2.0;
        let m = g.m() as f64;
        assert!((m - expected).abs() < 0.2 * expected, "m = {m}, expected ≈ {expected}");
    }

    #[test]
    fn gnm_exact_edges() {
        let mut r = rng();
        let g = gnm(50, 100, &mut r);
        assert_eq!(g.m(), 100);
    }

    #[test]
    fn rgg_matches_bruteforce() {
        // Same RNG stream drives point placement, so compare vs an O(n^2)
        // recomputation on a fresh graph of points harvested from edges.
        let mut r = rng();
        let g = random_geometric(200, 0.12, &mut r);
        // Sanity: edges symmetric & plausible count (expected ~ n^2/2 * pi r^2).
        let expected = 200.0f64 * 199.0 / 2.0 * std::f64::consts::PI * 0.12 * 0.12;
        let m = g.m() as f64;
        assert!(m > 0.3 * expected && m < 2.0 * expected, "m = {m}, expected ≈ {expected}");
    }

    #[test]
    fn ba_degrees() {
        let mut r = rng();
        let g = barabasi_albert(200, 3, &mut r);
        assert_eq!(g.n(), 200);
        // Every non-seed node has degree >= m.
        for v in 4..200u32 {
            assert!(g.degree(v) >= 3, "node {v} degree {}", g.degree(v));
        }
        assert!(crate::props::is_connected(&g));
    }

    #[test]
    fn regular_is_regular() {
        let mut r = rng();
        let g = random_regular(60, 4, &mut r);
        for v in 0..60u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(random_regular(10, 0, &mut r).m(), 0);
    }

    #[test]
    fn tree_is_tree() {
        let mut r = rng();
        for n in [2usize, 3, 10, 100] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.m(), n - 1);
            assert!(crate::props::is_connected(&g));
        }
        assert_eq!(random_tree(1, &mut r).n(), 1);
    }

    #[test]
    fn structured_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(grid(3, 4).m(), 3 * 4 * 2 - 3 - 4);
        assert_eq!(torus(3, 3).m(), 18);
        assert_eq!(hypercube(3).m(), 12);
        assert_eq!(binary_tree(7).degree(0), 2);
    }

    #[test]
    fn sbm_blocks() {
        let mut r = rng();
        let g = sbm(&[30, 30], 0.5, 0.01, &mut r);
        assert_eq!(g.n(), 60);
        let intra = g.edges().filter(|&(u, v)| (u < 30) == (v < 30)).count();
        let inter = g.m() - intra;
        assert!(intra > inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 + 8);
        // Interior spine nodes: 2 spine edges + 2 legs.
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.degree(0), 3);
        // Legs are leaves.
        assert_eq!(g.degree(11), 1);
        assert!(crate::props::is_connected(&g));
        assert_eq!(caterpillar(1, 0).n(), 1);
    }

    #[test]
    fn union_shifts_ids() {
        let g = disjoint_union(&[path(3), cycle(3)]);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 2 + 3);
        assert!(g.has_edge(3, 4) && g.has_edge(3, 5));
        assert!(!g.has_edge(2, 3));
    }
}
