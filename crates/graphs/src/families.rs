//! Named graph families — the unit of iteration for experiment grids.
//!
//! A [`GraphFamily`] pairs a generator with the parameter conventions the
//! experiments use (ER at average degree 8, RGG at expected degree ~10,
//! …), so a grid of `{algorithm × family × n × seed}` can be described by
//! plain enumerable data and every instance regenerated from `(family,
//! n, seed)` alone.
//!
//! # Parameterized families
//!
//! The default conventions are just one point on each generator's dial.
//! A family key may carry explicit parameters in the same `?key=value`
//! grammar the algorithm registry uses:
//!
//! ```text
//! er?avg_deg=16      ER at average degree 16
//! rgg?radius=0.05    RGG at connection radius 0.05
//! ba?attach=5        BA with 5 edges per arriving node
//! ```
//!
//! Parameterized keys canonicalize: a parameter spelled at its default
//! (`er?avg_deg=8`, `ba?attach=3`) parses back to the bare family, so a
//! key round-trips through [`parse`](GraphFamily::parse) /
//! [`key`](GraphFamily::key) to exactly one spelling and committed
//! artifact keys never alias. RGG radii are quantized to 1e-4 so the
//! enum stays plain `Copy + Eq + Hash` data.

use crate::{generators, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fixed-point denominator for RGG radii: `RggRadius(500)` is r = 0.05.
const RADIUS_UNIT: f64 = 10_000.0;

/// The workload families used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Erdős–Rényi with average degree 8.
    Er,
    /// Random geometric graph with expected average degree ~10.
    Rgg,
    /// Barabási–Albert with attachment 3.
    Ba,
    /// 2D grid (√n × √n).
    Grid,
    /// Uniform random tree.
    Tree,
    /// Dense Erdős–Rényi with average degree √n (where Luby's Θ(log n)
    /// bites at laptop scale).
    Dense,
    /// Cycle C_n (the worst case for sequential-greedy round counts).
    Cycle,
    /// Erdős–Rényi at an explicit average degree (`er?avg_deg=16`).
    ErDeg(u32),
    /// Random geometric graph at an explicit radius in units of 1e-4
    /// (`rgg?radius=0.05` is `RggRadius(500)`).
    RggRadius(u32),
    /// Barabási–Albert at an explicit attachment count (`ba?attach=5`).
    BaAttach(u32),
}

impl GraphFamily {
    /// Display name.
    pub fn name(self) -> String {
        match self {
            GraphFamily::Er => "ER(d=8)".to_string(),
            GraphFamily::Rgg => "RGG".to_string(),
            GraphFamily::Ba => "BA(m=3)".to_string(),
            GraphFamily::Grid => "Grid".to_string(),
            GraphFamily::Tree => "Tree".to_string(),
            GraphFamily::Dense => "Dense(√n)".to_string(),
            GraphFamily::Cycle => "Cycle".to_string(),
            GraphFamily::ErDeg(d) => format!("ER(d={d})"),
            GraphFamily::RggRadius(r) => format!("RGG(r={})", f64::from(r) / RADIUS_UNIT),
            GraphFamily::BaAttach(m) => format!("BA(m={m})"),
        }
    }

    /// All *default-convention* families, in comparison-table order.
    /// Parameterized variants are spelled explicitly where needed.
    pub fn all() -> [GraphFamily; 7] {
        [
            GraphFamily::Er,
            GraphFamily::Rgg,
            GraphFamily::Ba,
            GraphFamily::Grid,
            GraphFamily::Tree,
            GraphFamily::Dense,
            GraphFamily::Cycle,
        ]
    }

    /// Parses a CLI-style family key: a bare name (`er`, `rgg`, `ba`,
    /// `grid`, `tree`, `dense`, `cycle`; case-insensitive) or a
    /// parameterized spec (`er?avg_deg=16`, `rgg?radius=0.05`,
    /// `ba?attach=5`). Parameters at their default value canonicalize to
    /// the bare family. Unknown names, unknown or repeated parameters,
    /// and out-of-range values parse to `None`.
    pub fn parse(s: &str) -> Option<GraphFamily> {
        let (base, params) = match s.split_once('?') {
            Some((b, p)) => (b, Some(p)),
            None => (s, None),
        };
        let family = match base.to_ascii_lowercase().as_str() {
            "er" => GraphFamily::Er,
            "rgg" => GraphFamily::Rgg,
            "ba" => GraphFamily::Ba,
            "grid" => GraphFamily::Grid,
            "tree" => GraphFamily::Tree,
            "dense" => GraphFamily::Dense,
            "cycle" => GraphFamily::Cycle,
            _ => return None,
        };
        let Some(params) = params else { return Some(family) };
        // Exactly one parameter dial per family today; reject the rest.
        let (name, value) = params.split_once('=')?;
        if name.is_empty() || value.is_empty() || value.contains('&') {
            return None;
        }
        match (family, name) {
            (GraphFamily::Er, "avg_deg") => {
                let d: u32 = value.parse().ok().filter(|&d| d >= 1)?;
                Some(if d == 8 { GraphFamily::Er } else { GraphFamily::ErDeg(d) })
            }
            (GraphFamily::Rgg, "radius") => {
                let r: f64 = value.parse().ok()?;
                if !(r > 0.0 && r <= 1.0) {
                    return None;
                }
                let q = (r * RADIUS_UNIT).round() as u32;
                (q >= 1).then_some(GraphFamily::RggRadius(q))
            }
            (GraphFamily::Ba, "attach") => {
                let m: u32 = value.parse().ok().filter(|&m| m >= 1)?;
                Some(if m == 3 { GraphFamily::Ba } else { GraphFamily::BaAttach(m) })
            }
            _ => None,
        }
    }

    /// Canonical key accepted by [`parse`](GraphFamily::parse) — the
    /// spelling used in artifact payloads and CLI echoes.
    pub fn key(self) -> String {
        match self {
            GraphFamily::Er => "er".to_string(),
            GraphFamily::Rgg => "rgg".to_string(),
            GraphFamily::Ba => "ba".to_string(),
            GraphFamily::Grid => "grid".to_string(),
            GraphFamily::Tree => "tree".to_string(),
            GraphFamily::Dense => "dense".to_string(),
            GraphFamily::Cycle => "cycle".to_string(),
            GraphFamily::ErDeg(d) => format!("er?avg_deg={d}"),
            GraphFamily::RggRadius(r) => format!("rgg?radius={}", f64::from(r) / RADIUS_UNIT),
            GraphFamily::BaAttach(m) => format!("ba?attach={m}"),
        }
    }

    /// Generates an `n`-node instance.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            GraphFamily::Er => generators::gnp_avg_degree(n, 8.0, &mut rng),
            GraphFamily::Rgg => {
                // radius for expected degree ~10: pi r^2 n = 10.
                let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, &mut rng)
            }
            GraphFamily::Ba => generators::barabasi_albert(n, 3, &mut rng),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                generators::grid(side.max(2), side.max(2))
            }
            GraphFamily::Tree => generators::random_tree(n, &mut rng),
            GraphFamily::Dense => generators::gnp_avg_degree(n, (n as f64).sqrt(), &mut rng),
            GraphFamily::Cycle => generators::cycle(n.max(3)),
            GraphFamily::ErDeg(d) => generators::gnp_avg_degree(n, f64::from(d), &mut rng),
            GraphFamily::RggRadius(r) => {
                generators::random_geometric(n, f64::from(r) / RADIUS_UNIT, &mut rng)
            }
            GraphFamily::BaAttach(m) => generators::barabasi_albert(n, m as usize, &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let all = GraphFamily::all();
        let parameterized = [
            GraphFamily::ErDeg(16),
            GraphFamily::RggRadius(900),
            GraphFamily::BaAttach(5),
        ];
        for family in all.iter().chain(&parameterized) {
            let a = family.generate(200, 7);
            let b = family.generate(200, 7);
            assert_eq!(a.n(), b.n(), "{}", family.name());
            assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        }
    }

    #[test]
    fn parse_round_trips() {
        for family in GraphFamily::all() {
            assert_eq!(GraphFamily::parse(&family.key()), Some(family));
        }
        for family in [
            GraphFamily::ErDeg(16),
            GraphFamily::RggRadius(500),
            GraphFamily::BaAttach(5),
        ] {
            assert_eq!(GraphFamily::parse(&family.key()), Some(family), "{}", family.key());
        }
        assert_eq!(GraphFamily::parse("nope"), None);
    }

    #[test]
    fn parameter_defaults_canonicalize_to_the_bare_family() {
        assert_eq!(GraphFamily::parse("er?avg_deg=8"), Some(GraphFamily::Er));
        assert_eq!(GraphFamily::parse("ba?attach=3"), Some(GraphFamily::Ba));
        assert_eq!(GraphFamily::parse("er?avg_deg=16"), Some(GraphFamily::ErDeg(16)));
        assert_eq!(GraphFamily::parse("ER?avg_deg=16"), Some(GraphFamily::ErDeg(16)));
        assert_eq!(GraphFamily::parse("rgg?radius=0.05"), Some(GraphFamily::RggRadius(500)));
        assert_eq!(GraphFamily::parse("ba?attach=5"), Some(GraphFamily::BaAttach(5)));
    }

    #[test]
    fn parameter_parsing_is_strict() {
        // Unknown parameter names, params on families without dials.
        assert_eq!(GraphFamily::parse("er?degree=16"), None);
        assert_eq!(GraphFamily::parse("tree?avg_deg=16"), None);
        assert_eq!(GraphFamily::parse("cycle?radius=0.1"), None);
        // Out-of-range and malformed values.
        assert_eq!(GraphFamily::parse("er?avg_deg=0"), None);
        assert_eq!(GraphFamily::parse("er?avg_deg=-4"), None);
        assert_eq!(GraphFamily::parse("er?avg_deg="), None);
        assert_eq!(GraphFamily::parse("rgg?radius=0"), None);
        assert_eq!(GraphFamily::parse("rgg?radius=1.5"), None);
        assert_eq!(GraphFamily::parse("rgg?radius=0.00001"), None);
        assert_eq!(GraphFamily::parse("ba?attach=x"), None);
        // One dial per family: a second parameter is rejected.
        assert_eq!(GraphFamily::parse("er?avg_deg=4&avg_deg=6"), None);
    }

    #[test]
    fn parameterized_generation_moves_the_dial() {
        let sparse = GraphFamily::Er.generate(400, 3);
        let dense = GraphFamily::ErDeg(32).generate(400, 3);
        assert!(dense.m() > sparse.m(), "avg_deg=32 must add edges over d=8");
        let near = GraphFamily::RggRadius(200).generate(400, 3);
        let far = GraphFamily::RggRadius(2000).generate(400, 3);
        assert!(far.m() > near.m(), "a larger radius must add edges");
        let thin = GraphFamily::Ba.generate(400, 3);
        let thick = GraphFamily::BaAttach(6).generate(400, 3);
        assert!(thick.m() > thin.m(), "attach=6 must add edges over m=3");
    }
}
