//! Named graph families — the unit of iteration for experiment grids.
//!
//! A [`GraphFamily`] pairs a generator with the parameter conventions the
//! experiments use (ER at average degree 8, RGG at expected degree ~10,
//! …), so a grid of `{algorithm × family × n × seed}` can be described by
//! plain enumerable data and every instance regenerated from `(family,
//! n, seed)` alone.

use crate::{generators, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The workload families used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Erdős–Rényi with average degree 8.
    Er,
    /// Random geometric graph with expected average degree ~10.
    Rgg,
    /// Barabási–Albert with attachment 3.
    Ba,
    /// 2D grid (√n × √n).
    Grid,
    /// Uniform random tree.
    Tree,
    /// Dense Erdős–Rényi with average degree √n (where Luby's Θ(log n)
    /// bites at laptop scale).
    Dense,
    /// Cycle C_n (the worst case for sequential-greedy round counts).
    Cycle,
}

impl GraphFamily {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Er => "ER(d=8)",
            GraphFamily::Rgg => "RGG",
            GraphFamily::Ba => "BA(m=3)",
            GraphFamily::Grid => "Grid",
            GraphFamily::Tree => "Tree",
            GraphFamily::Dense => "Dense(√n)",
            GraphFamily::Cycle => "Cycle",
        }
    }

    /// All families, in comparison-table order.
    pub fn all() -> [GraphFamily; 7] {
        [
            GraphFamily::Er,
            GraphFamily::Rgg,
            GraphFamily::Ba,
            GraphFamily::Grid,
            GraphFamily::Tree,
            GraphFamily::Dense,
            GraphFamily::Cycle,
        ]
    }

    /// Parses a CLI-style family key (`er`, `rgg`, `ba`, `grid`, `tree`,
    /// `dense`, `cycle`; case-insensitive).
    pub fn parse(s: &str) -> Option<GraphFamily> {
        match s.to_ascii_lowercase().as_str() {
            "er" => Some(GraphFamily::Er),
            "rgg" => Some(GraphFamily::Rgg),
            "ba" => Some(GraphFamily::Ba),
            "grid" => Some(GraphFamily::Grid),
            "tree" => Some(GraphFamily::Tree),
            "dense" => Some(GraphFamily::Dense),
            "cycle" => Some(GraphFamily::Cycle),
            _ => None,
        }
    }

    /// CLI key accepted by [`parse`](GraphFamily::parse).
    pub fn key(self) -> &'static str {
        match self {
            GraphFamily::Er => "er",
            GraphFamily::Rgg => "rgg",
            GraphFamily::Ba => "ba",
            GraphFamily::Grid => "grid",
            GraphFamily::Tree => "tree",
            GraphFamily::Dense => "dense",
            GraphFamily::Cycle => "cycle",
        }
    }

    /// Generates an `n`-node instance.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            GraphFamily::Er => generators::gnp_avg_degree(n, 8.0, &mut rng),
            GraphFamily::Rgg => {
                // radius for expected degree ~10: pi r^2 n = 10.
                let r = (10.0 / (std::f64::consts::PI * n as f64)).sqrt();
                generators::random_geometric(n, r, &mut rng)
            }
            GraphFamily::Ba => generators::barabasi_albert(n, 3, &mut rng),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                generators::grid(side.max(2), side.max(2))
            }
            GraphFamily::Tree => generators::random_tree(n, &mut rng),
            GraphFamily::Dense => generators::gnp_avg_degree(n, (n as f64).sqrt(), &mut rng),
            GraphFamily::Cycle => generators::cycle(n.max(3)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in GraphFamily::all() {
            let a = family.generate(200, 7);
            let b = family.generate(200, 7);
            assert_eq!(a.n(), b.n(), "{}", family.name());
            assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        }
    }

    #[test]
    fn parse_round_trips() {
        for family in GraphFamily::all() {
            assert_eq!(GraphFamily::parse(family.key()), Some(family));
        }
        assert_eq!(GraphFamily::parse("nope"), None);
    }
}
