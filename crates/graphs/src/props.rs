//! Graph measurements used by the experiment harness.

use crate::graph::{Graph, NodeId};

/// Connected components: returns `(labels, count)` where `labels[v]` is the
/// component index of `v` in `0..count`.
///
/// Components are numbered in order of their smallest node id.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as NodeId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Whether the graph is connected (the empty graph is considered
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Sizes of all connected components, sorted descending.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// The largest connected component as an induced subgraph, with the map
/// from new node ids to original ids.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (labels, count) = connected_components(g);
    if count == 0 {
        return (Graph::empty(0), Vec::new());
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap();
    let keep: Vec<NodeId> =
        (0..g.n() as NodeId).filter(|&v| labels[v as usize] == best).collect();
    g.induced(&keep)
}

/// Degeneracy of the graph and a degeneracy ordering (smallest-last).
///
/// The degeneracy is the maximum, over the elimination process, of the
/// degree of the minimum-degree node at removal time.
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); maxd + 1];
    for v in 0..n as NodeId {
        buckets[deg[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        while cursor > 0 && buckets[cursor - 1].iter().any(|&v| !removed[v as usize] && deg[v as usize] == cursor - 1) {
            cursor -= 1;
        }
        let v = loop {
            if cursor >= buckets.len() {
                unreachable!("bucket queue exhausted early");
            }
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cursor => break v,
                Some(_) => continue,
                None => cursor += 1,
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                deg[u as usize] -= 1;
                buckets[deg[u as usize]].push(u);
            }
        }
    }
    (degeneracy, order)
}

/// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.n() as NodeId {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_union() {
        let g = generators::disjoint_union(&[generators::path(3), generators::cycle(4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(component_sizes(&g), vec![4, 3]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn largest_component_extraction() {
        let g = generators::disjoint_union(&[generators::path(2), generators::complete(5)]);
        let (h, map) = largest_component(&g);
        assert_eq!(h.n(), 5);
        assert_eq!(h.m(), 10);
        assert_eq!(map, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn degeneracy_known_values() {
        assert_eq!(degeneracy(&generators::path(10)).0, 1);
        assert_eq!(degeneracy(&generators::cycle(10)).0, 2);
        assert_eq!(degeneracy(&generators::complete(6)).0, 5);
        assert_eq!(degeneracy(&generators::star(10)).0, 1);
        let (_, order) = degeneracy(&generators::path(5));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::star(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[1], 6);
        assert_eq!(h[6], 1);
    }
}
