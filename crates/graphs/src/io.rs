//! Plain-text edge-list serialization.
//!
//! The format is line-oriented: the first non-comment line is `n m`, then
//! one `u v` pair per line. Lines starting with `#` are comments.

use crate::graph::{Graph, GraphError, NodeId};
use std::fmt::Write as _;

/// Error returned by [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// An edge line could not be parsed.
    BadEdge { line: usize, text: String },
    /// The declared edge count does not match the body.
    CountMismatch { declared: usize, found: usize },
    /// The edges do not form a valid simple graph.
    Graph(GraphError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseError::BadEdge { line, text } => write!(f, "bad edge on line {line}: {text:?}"),
            ParseError::CountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges but body has {found}")
            }
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Serializes a graph to the edge-list format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses a graph from the edge-list format.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed line, count
/// mismatch, or graph-validity violation.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines.next().ok_or_else(|| ParseError::BadHeader(String::new()))?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let m: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let mut edges = Vec::with_capacity(m);
    for (lineno, l) in lines {
        let mut it = l.split_whitespace();
        let parse = |t: Option<&str>| t.and_then(|t| t.parse::<NodeId>().ok());
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => edges.push((u, v)),
            _ => return Err(ParseError::BadEdge { line: lineno, text: l.to_string() }),
        }
    }
    if edges.len() != m {
        return Err(ParseError::CountMismatch { declared: m, found: edges.len() });
    }
    Ok(Graph::from_edges(n, &edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::cycle(6);
        let text = to_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# a comment\n\n3 2\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_edge_list(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(parse_edge_list("x y"), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            parse_edge_list("2 1\n0 x"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("2 2\n0 1"),
            Err(ParseError::CountMismatch { declared: 2, found: 1 })
        ));
        assert!(matches!(parse_edge_list("2 1\n0 0"), Err(ParseError::Graph(_))));
    }
}
