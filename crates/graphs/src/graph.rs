//! Compact port-numbered CSR graphs.

use std::fmt;

/// Identifier of a node: an index in `0..n`.
pub type NodeId = u32;

/// A port number at a node: an index in `0..degree(v)`.
///
/// Ports are the only addressing mechanism available to protocols in the
/// anonymous CONGEST model: a node does not a priori know which node is on
/// the other side of a port.
pub type Port = u32;

/// Error returned when constructing a [`Graph`] from an invalid edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    EndpointOutOfRange { edge: (NodeId, NodeId), n: usize },
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) has endpoint out of range (n = {})", edge.0, edge.1, n)
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph in CSR form with port numbering.
///
/// Neighbor lists are sorted by node id, duplicate edges are merged, and
/// for each half-edge the *reverse port* (the port index of the same edge
/// at the opposite endpoint) is precomputed so that the simulator can route
/// replies without any lookup.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    rev_port: Vec<Port>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph").field("n", &self.n()).field("m", &self.m()).finish()
    }
}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list.
    ///
    /// Edges may appear in any order and orientation; duplicates are
    /// merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EndpointOutOfRange`] if an endpoint is `>= n`
    /// and [`GraphError::SelfLoop`] for loops.
    ///
    /// # Example
    ///
    /// ```
    /// # use graphgen::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 1)])?;
    /// assert_eq!(g.m(), 2); // duplicate (1,2)/(2,1) merged
    /// # Ok::<(), graphgen::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut halves: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            if a as usize >= n || b as usize >= n {
                return Err(GraphError::EndpointOutOfRange { edge: (a, b), n });
            }
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            halves.push((a, b));
            halves.push((b, a));
        }
        halves.sort_unstable();
        halves.dedup();
        Ok(Graph::from_sorted_halves(n, &halves))
    }

    /// Builds the CSR from half-edges that are already sorted by
    /// `(source, target)` and deduplicated. This is the single rebuild
    /// path shared by [`Graph::from_edges`], [`Graph::induced`], and the
    /// delta machinery ([`Graph::apply_deltas`](crate::delta)) — port
    /// assignment lives here and nowhere else.
    pub(crate) fn from_sorted_halves(n: usize, halves: &[(NodeId, NodeId)]) -> Graph {
        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in halves {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = halves.iter().map(|&(_, b)| b).collect();
        Graph::from_csr_parts(offsets, targets)
    }

    /// Finishes a CSR whose `offsets`/`targets` are already laid out
    /// (per-source neighbor lists sorted ascending) by computing the
    /// reverse ports.
    ///
    /// Reverse ports: position of `a` within `b`'s (sorted) neighbor
    /// list. The half-edges appear in `(source, target)` order, so
    /// scanning them in sequence visits each target `b`'s incoming
    /// sources in ascending order — which is exactly `b`'s port order.
    /// One linear counting pass therefore replaces a binary search per
    /// half-edge, keeping construction at 10^6–10^7 nodes off the
    /// profile.
    pub(crate) fn from_csr_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Graph {
        let n = offsets.len() - 1;
        let mut rev_port = vec![0 as Port; targets.len()];
        let mut seen = vec![0 as Port; n];
        for (e, &b) in targets.iter().enumerate() {
            rev_port[e] = seen[b as usize];
            seen[b as usize] += 1;
        }
        Graph { offsets, targets, rev_port }
    }

    /// Builds a graph without any edges.
    pub fn empty(n: usize) -> Graph {
        Graph { offsets: vec![0; n + 1], targets: Vec::new(), rev_port: Vec::new() }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted neighbor list of `v`; `neighbors(v)[p]` is the node
    /// reached through port `p`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Follows port `p` of node `v`, returning the node at the other end
    /// together with the reverse port leading back to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= degree(v)`.
    pub fn endpoint(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        let e = self.offsets[v as usize] + p as usize;
        assert!(e < self.offsets[v as usize + 1], "port {p} out of range at node {v}");
        (self.targets[e], self.rev_port[e])
    }

    /// The port of `v` that leads to `u`, if `{u, v}` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok().map(|p| p as Port)
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.port_to(u, v).is_some()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u).iter().filter(move |&&v| u < v).map(move |&v| (u, v))
        })
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as NodeId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 when `n == 0`).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.n() as f64
        }
    }

    /// The subgraph induced by `keep`, together with a map from new node
    /// ids to the original ids.
    ///
    /// Nodes in `keep` may appear in any order; duplicates are ignored.
    pub fn induced(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut sel: Vec<NodeId> = keep.to_vec();
        sel.sort_unstable();
        sel.dedup();
        let mut new_id = vec![u32::MAX; self.n()];
        for (i, &v) in sel.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        // `sel` is sorted and each neighbor list is sorted, and renaming
        // by `new_id` is monotone — so emitting half-edges node by node
        // yields them already in `(source, target)` order for the shared
        // rebuild path, no re-sort needed.
        let mut halves = Vec::new();
        for &v in &sel {
            for &u in self.neighbors(v) {
                if new_id[u as usize] != u32::MAX {
                    halves.push((new_id[v as usize], new_id[u as usize]));
                }
            }
        }
        (Graph::from_sorted_halves(sel.len(), &halves), sel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(2, &[(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::EndpointOutOfRange { .. })
        ));
    }

    #[test]
    fn ports_are_involutive() {
        let g = triangle();
        for v in 0..3u32 {
            for p in 0..g.degree(v) as u32 {
                let (u, q) = g.endpoint(v, p);
                assert_eq!(g.endpoint(u, q), (v, p));
            }
        }
    }

    #[test]
    fn port_to_finds_edges() {
        let g = triangle();
        assert_eq!(g.port_to(0, 2), Some(1));
        assert!(g.has_edge(0, 2));
        let g2 = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g2.port_to(0, 3), None);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (h, map) = g.induced(&[0, 1, 2]);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 2); // 0-1, 1-2 survive
        assert_eq!(map, vec![0, 1, 2]);
        let (h2, map2) = g.induced(&[4, 0, 4]);
        assert_eq!(h2.n(), 2);
        assert_eq!(h2.m(), 1);
        assert_eq!(map2, vec![0, 4]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
