//! Property tests on the graph substrate.

use graphgen::{generators, io, products, props, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..80, any::<u64>(), 0.0f64..0.5).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::gnp(n, p, &mut rng)
    })
}

proptest! {
    /// Port numbering is an involution: following a port and its
    /// reverse returns to the start.
    #[test]
    fn ports_are_involutive(g in arb_graph()) {
        for v in 0..g.n() as u32 {
            for p in 0..g.degree(v) as u32 {
                let (u, q) = g.endpoint(v, p);
                prop_assert_eq!(g.endpoint(u, q), (v, p));
                prop_assert_ne!(u, v);
            }
        }
    }

    /// Degrees sum to twice the edge count; neighbor lists are sorted
    /// and duplicate-free.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let sum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.m());
        for v in 0..g.n() as u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Edge-list serialization round-trips.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let text = io::to_edge_list(&g);
        prop_assert_eq!(io::parse_edge_list(&text).unwrap(), g);
    }

    /// Component labels are consistent with edges, and sizes sum to n.
    #[test]
    fn component_consistency(g in arb_graph()) {
        let (labels, count) = props::connected_components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        prop_assert_eq!(props::component_sizes(&g).iter().sum::<usize>(), g.n());
    }

    /// Induced subgraphs keep exactly the kept-node edges.
    #[test]
    fn induced_edges(g in arb_graph(), keep_bits in any::<u64>()) {
        let keep: Vec<u32> =
            (0..g.n() as u32).filter(|&v| keep_bits >> (v % 64) & 1 == 1).collect();
        let (h, map) = g.induced(&keep);
        prop_assert_eq!(h.n(), map.len());
        for (a, b) in h.edges() {
            prop_assert!(g.has_edge(map[a as usize], map[b as usize]));
        }
        // Edge count matches a direct count over kept pairs.
        let kept: std::collections::HashSet<u32> = map.iter().copied().collect();
        let direct = g
            .edges()
            .filter(|&(u, v)| kept.contains(&u) && kept.contains(&v))
            .count();
        prop_assert_eq!(h.m(), direct);
    }

    /// The line graph has one node per edge and Σ C(deg, 2) edges.
    #[test]
    fn line_graph_counts(g in arb_graph()) {
        let (lg, map) = products::line_graph(&g);
        prop_assert_eq!(lg.n(), g.m());
        prop_assert_eq!(map.len(), g.m());
        let expect: usize =
            (0..g.n() as u32).map(|v| g.degree(v) * g.degree(v).saturating_sub(1) / 2).sum();
        prop_assert_eq!(lg.m(), expect);
    }

    /// Degeneracy is at most the max degree and the ordering is a
    /// permutation.
    #[test]
    fn degeneracy_bounds(g in arb_graph()) {
        let (d, order) = props::degeneracy(&g);
        prop_assert!(d <= g.max_degree());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.n() as u32).collect::<Vec<_>>());
    }
}
