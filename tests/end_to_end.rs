//! Workspace-level integration tests: exercise the full public API the
//! way a downstream user would (through the `awake_mis` facade).

use awake_mis::analysis::spec::default_registry;
use awake_mis::core::{check_mis, AwakeMis, AwakeMisConfig, MisState};
use awake_mis::graphs::{generators, Graph};
use awake_mis::sim::{SimConfig, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn facade_quickstart_flow() {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::gnp(150, 0.05, &mut rng);
    let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(3)).run().unwrap();
    let states: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
    check_mis(&g, &states).unwrap();
    assert!(report.metrics.awake_complexity() < report.metrics.round_complexity());
}

#[test]
fn all_algorithms_agree_on_validity_across_families() {
    let mut rng = SmallRng::seed_from_u64(2);
    let graphs = [generators::gnp(80, 0.08, &mut rng),
        generators::random_geometric(80, 0.2, &mut rng),
        generators::barabasi_albert(80, 2, &mut rng),
        generators::grid(9, 9),
        generators::random_tree(80, &mut rng)];
    let reg = default_registry();
    for (i, g) in graphs.iter().enumerate() {
        for key in reg.keys() {
            let r = reg.resolve(key).unwrap().run(g, 17).unwrap();
            assert!(r.correct, "graph {i}, {}: invalid output", r.algorithm);
        }
    }
}

#[test]
fn awake_mis_handles_degenerate_topologies() {
    // Tiny, disconnected, and edgeless graphs must all work.
    for (name, g) in [
        ("n1", Graph::empty(1)),
        ("n2-edge", generators::path(2)),
        ("n2-noedge", Graph::empty(2)),
        ("n3-path", generators::path(3)),
        (
            "mixed",
            generators::disjoint_union(&[Graph::empty(3), generators::complete(3), generators::path(2)]),
        ),
    ] {
        let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
        let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(5)).run().unwrap();
        let states: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
        check_mis(&g, &states).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn n_upper_may_exceed_n() {
    // Nodes only know a polynomial upper bound N >= n (paper §1.3).
    let mut rng = SmallRng::seed_from_u64(4);
    let g = generators::gnp(100, 0.07, &mut rng);
    let cfg = SimConfig { n_upper: Some(100 * 8), ..SimConfig::seeded(6) };
    let nodes = (0..g.n()).map(|_| AwakeMis::theorem13()).collect();
    let report = Simulator::new(g.clone(), nodes, cfg).run().unwrap();
    let states: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
    check_mis(&g, &states).unwrap();
}

#[test]
fn failure_rate_is_low_across_seeds_and_configs() {
    // Monte Carlo guarantee: across 20 seeds on two graph families, no
    // run may produce an invalid MIS with the default parameters.
    let mut rng = SmallRng::seed_from_u64(8);
    let graphs =
        vec![generators::gnp(200, 0.05, &mut rng), generators::barabasi_albert(200, 3, &mut rng)];
    for g in &graphs {
        for seed in 0..10u64 {
            for cfg in [AwakeMisConfig::default(), AwakeMisConfig::round_efficient()] {
                let nodes = (0..g.n()).map(|_| AwakeMis::new(cfg)).collect();
                let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(seed)).run().unwrap();
                assert_eq!(report.outputs.iter().filter(|o| o.failed).count(), 0);
                let states: Vec<MisState> = report.outputs.iter().map(|o| o.state).collect();
                check_mis(g, &states).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }
}

#[test]
fn energy_model_prefers_awake_mis_on_awake_energy() {
    use awake_mis::analysis::EnergyModel;
    let mut rng = SmallRng::seed_from_u64(9);
    let g = generators::random_geometric(300, 0.12, &mut rng);
    let am = default_registry().resolve("awake").unwrap().run(&g, 10).unwrap();
    let naive = default_registry().resolve("naive").unwrap().run(&g, 10).unwrap();
    let m = EnergyModel::default();
    assert!(
        m.awake_energy_mj(am.awake_max) < m.awake_energy_mj(naive.awake_max),
        "Awake-MIS must beat the naive baseline on the paper's energy metric"
    );
}
