//! Workspace smoke test: every registered MIS algorithm in the repo —
//! the four distributed protocols of the paper (`Awake-MIS` in both
//! variants, `LDT-MIS`, `VT-MIS`), the two distributed baselines (Luby,
//! naive greedy), the two node-averaged algorithms from the related
//! sleeping-model work (`NA-MIS`, `GP-Avg-MIS`), and the sequential
//! greedy reference — on a small fixed-seed graph, each output checked
//! for independence and maximality.

use awake_mis::analysis::spec::default_registry;
use awake_mis::core::{check_maximal, check_mis, greedy, is_independent, is_maximal};
use awake_mis::graphs::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn every_algorithm_produces_a_verified_mis() {
    let g = generators::gnp(48, 0.12, &mut SmallRng::seed_from_u64(11));
    assert!(g.m() > 0, "fixture graph must have edges");

    // One row per registered algorithm; every row must pass both
    // verifiers on the same fixture. Resolving through the registry
    // keeps this test extending itself when algorithms are added.
    // (The exact key list is pinned in analysis's
    // `every_builtin_runs_and_verifies`; here the loop covers whatever
    // is registered, so new algorithms are smoke-tested automatically.)
    let reg = default_registry();
    let keys: Vec<String> = reg.keys().map(str::to_string).collect();
    assert!(!keys.is_empty(), "registry must have builtins");
    for key in &keys {
        let runner = reg.resolve(key).expect("builtin resolves");
        let result = runner
            .run(&g, 7)
            .unwrap_or_else(|e| panic!("{}: simulator error: {e:?}", runner.name()));
        assert_eq!(result.failures, 0, "{}: Monte Carlo failures", runner.name());
        let states = &result.states;
        check_mis(&g, states).unwrap_or_else(|e| panic!("{}: {e}", runner.name()));
        check_maximal(&g, states).unwrap_or_else(|e| panic!("{}: {e}", runner.name()));
        assert!(result.correct, "{}: runner flagged incorrect", runner.name());
        assert!(result.mis_size > 0, "{}: empty MIS on a non-empty graph", runner.name());
    }

    // The sequential greedy reference (LFMIS of a random order).
    let (order, in_mis) = greedy::random_greedy(&g, &mut SmallRng::seed_from_u64(13));
    assert_eq!(order.len(), g.n());
    assert!(is_independent(&g, &in_mis), "sequential greedy: not independent");
    assert!(is_maximal(&g, &in_mis), "sequential greedy: not maximal");
    let states = greedy::to_states(&in_mis);
    check_mis(&g, &states).expect("sequential greedy output");
    check_maximal(&g, &states).expect("sequential greedy maximality");
}
