//! Failure injection: deliberately violate protocol assumptions and
//! verify that the *detection machinery* (verifiers, metrics, failure
//! flags) catches the breakage — guarding the simulator's message-loss
//! semantics and the harness's ability to see real failures.
//!
//! Lost announcements used to be staged by a bespoke `SabotagedVtMis`
//! protocol that skipped its communication-set wake-ups. The fault
//! model makes the same breakage a first-class knob: `vt?loss=…` drops
//! InMis announcements in transit, which is exactly the failure the
//! virtual-tree schedule exists to prevent.

use awake_mis::analysis::default_registry;
use awake_mis::core::{check_mis, states_to_set, VtMis};
use awake_mis::graphs::{generators, Port};
use awake_mis::sim::{
    Action, FaultModel, NodeCtx, Outbox, Protocol, SimConfig, Simulator, Standalone,
};

#[test]
fn lost_announcements_break_independence_detectably() {
    // Path graph, IDs 1..n along it: every node conflicts with its
    // predecessor unless the predecessor's InMis announcement arrives.
    // With 30% message loss some announcement is eventually dropped and
    // the successor wrongly joins — the verifier must name that
    // violation precisely.
    let n = 8usize;
    let g = generators::path(n);
    let fault = FaultModel { loss: 0.3, ..FaultModel::none() };
    let mut broken = 0usize;
    let mut saw_adjacent = false;
    for seed in 1..=20u64 {
        let nodes =
            (0..n).map(|v| Standalone::new(VtMis::new(v as u64 + 1, n as u64, None))).collect();
        let cfg = SimConfig { fault: fault.clone(), ..SimConfig::seeded(seed) };
        let report = Simulator::new(g.clone(), nodes, cfg).run().unwrap();
        if let Err(err) = check_mis(&g, &report.outputs) {
            broken += 1;
            // Loss only suppresses InMis announcements, so the one
            // reachable violation is two adjacent set members.
            assert!(err.contains("adjacent"), "unexpected error: {err}");
            saw_adjacent = true;
            assert!(
                report.metrics.messages_faulted > 0,
                "a broken run must show dropped messages in the metrics"
            );
        }
    }
    assert!(
        broken > 0 && saw_adjacent,
        "30% loss over 20 seeds must break some run — otherwise the \
         communication schedule wasn't actually needed"
    );
}

#[test]
fn the_registry_surfaces_the_same_breakage_as_vt_loss_points() {
    // Same scenario through the public spec grammar: the `vt?loss=…`
    // level reports incorrect runs with dropped messages, while the
    // clean `vt` control verifies on every seed.
    let registry = default_registry();
    let lossy = registry.resolve("vt?loss=0.3").unwrap();
    let clean = registry.resolve("vt").unwrap();
    let g = generators::path(24);
    let mut broken = 0usize;
    for seed in 1..=10u64 {
        let r = lossy.run(&g, seed).unwrap();
        if !r.correct {
            broken += 1;
            assert!(r.faulted > 0, "incorrect lossy runs must show dropped messages");
        }
        let c = clean.run(&g, seed).unwrap();
        assert!(c.correct, "the loss-free control must verify (seed {seed})");
        assert_eq!(c.faulted, 0, "the control drops nothing");
    }
    assert!(broken > 0, "30% loss over 10 seeds must break some run");
}

#[test]
fn control_without_loss_is_correct() {
    // Identical setup minus the faults: a valid LFMIS of the ID order.
    let n = 8usize;
    let g = generators::path(n);
    let nodes =
        (0..n).map(|v| Standalone::new(VtMis::new(v as u64 + 1, n as u64, None))).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(1)).run().unwrap();
    check_mis(&g, &report.outputs).unwrap();
    // Alternating pattern: LFMIS of 1..n on a path.
    let set = states_to_set(&report.outputs).unwrap();
    assert_eq!(set, (0..n).map(|v| v % 2 == 0).collect::<Vec<_>>());
}

/// A message that ignores the CONGEST budget.
#[derive(Debug, Clone)]
struct FatMsg(Vec<u64>);

impl awake_mis::sim::MessageSize for FatMsg {
    fn bits(&self) -> usize {
        self.0.len() * 64
    }
}

/// A protocol that shouts oversized messages — the engine must refuse.
struct Shouter;
impl Protocol for Shouter {
    type Msg = FatMsg;
    type Output = ();
    fn send(&mut self, _: &mut NodeCtx) -> Outbox<FatMsg> {
        Outbox::Broadcast(FatMsg(vec![0; 64])) // 4096 bits
    }
    fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, FatMsg)]) -> Action {
        Action::Terminate
    }
    fn output(&self) {}
}

#[test]
fn congest_budget_violations_abort() {
    let g = generators::path(2);
    let cfg = SimConfig { bit_limit: Some(256), ..SimConfig::seeded(1) };
    let err = Simulator::new(g, vec![Shouter, Shouter], cfg).run().unwrap_err();
    assert!(matches!(err, awake_mis::sim::SimError::MessageTooLarge { bits: 4096, .. }));
}
