//! Failure injection: deliberately violate protocol assumptions and
//! verify that the *detection machinery* (verifiers, metrics, failure
//! flags) catches the breakage — guarding the simulator's message-loss
//! semantics and the harness's ability to see real failures.

use awake_mis::core::{check_mis, is_mis, states_to_set, MisMsg, MisState};
use awake_mis::graphs::{generators, Port};
use awake_mis::sim::{Action, NodeCtx, Outbox, Protocol, SimConfig, Simulator};

/// `VT-MIS` with sabotage: the saboteur node skips its communication-set
/// wake-ups after deciding, so later neighbors never hear its InMis
/// announcement — exactly the failure the virtual-tree schedule exists
/// to prevent.
struct SabotagedVtMis {
    id: u64,
    saboteur: bool,
    state: MisState,
    wakes: Vec<u64>,
    idx: usize,
    finished: bool,
}

impl SabotagedVtMis {
    fn new(id: u64, i_max: u64, saboteur: bool) -> Self {
        let wakes: Vec<u64> = vtree::wake_rounds(id, i_max).into_iter().map(|r| r - 1).collect();
        let _ = i_max; // wake schedule already encodes the horizon
        SabotagedVtMis { id, saboteur, state: MisState::Undecided, wakes, idx: 0, finished: false }
    }
}

impl Protocol for SabotagedVtMis {
    type Msg = MisMsg;
    type Output = MisState;

    fn send(&mut self, ctx: &mut NodeCtx) -> Outbox<MisMsg> {
        if self.wakes.get(self.idx) == Some(&ctx.round) {
            Outbox::Broadcast(MisMsg(self.state))
        } else {
            Outbox::Silent
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx, inbox: &[(Port, MisMsg)]) -> Action {
        if self.wakes.get(self.idx) == Some(&ctx.round) {
            if self.state == MisState::Undecided
                && inbox.iter().any(|&(_, MisMsg(s))| s == MisState::InMis)
            {
                self.state = MisState::NotInMis;
            }
            if ctx.round + 1 == self.id && self.state == MisState::Undecided {
                self.state = MisState::InMis;
            }
            self.idx += 1;
        }
        // The saboteur goes to sleep for good once decided: its remaining
        // communication-set rounds are skipped.
        if self.saboteur && self.state.is_decided() {
            self.finished = true;
            return Action::Terminate;
        }
        match self.wakes.get(self.idx) {
            Some(&w) => Action::SleepUntil(w.max(ctx.round + 1)),
            None => {
                self.finished = true;
                Action::Terminate
            }
        }
    }

    fn output(&self) -> MisState {
        assert!(self.finished);
        self.state
    }
}

#[test]
fn skipping_comm_rounds_breaks_independence_detectably() {
    // Path 0-1-2-...: give node 0 the smallest ID and make it the
    // saboteur. Node 0 joins the MIS in round 1 but never announces —
    // its neighbor (next in ID order) will wrongly join too.
    let n = 8usize;
    let g = generators::path(n);
    // IDs along the path: 1, 2, ..., n → everyone conflicts with the
    // previous node unless announcements work.
    let nodes = (0..n)
        .map(|v| SabotagedVtMis::new(v as u64 + 1, n as u64, v == 0))
        .collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(1)).run().unwrap();
    let set = states_to_set(&report.outputs).unwrap();
    assert!(
        !is_mis(&g, &set),
        "sabotage must produce an invalid MIS (got {set:?}) — otherwise the \
         communication schedule wasn't actually needed"
    );
    // And the verifier names the violation precisely.
    let err = check_mis(&g, &report.outputs).unwrap_err();
    assert!(err.contains("adjacent"), "unexpected error: {err}");
}

#[test]
fn control_without_sabotage_is_correct() {
    // Identical setup minus the sabotage: a valid LFMIS of the ID order.
    let n = 8usize;
    let g = generators::path(n);
    let nodes = (0..n).map(|v| SabotagedVtMis::new(v as u64 + 1, n as u64, false)).collect();
    let report = Simulator::new(g.clone(), nodes, SimConfig::seeded(1)).run().unwrap();
    check_mis(&g, &report.outputs).unwrap();
    // Alternating pattern: LFMIS of 1..n on a path.
    let set = states_to_set(&report.outputs).unwrap();
    assert_eq!(set, (0..n).map(|v| v % 2 == 0).collect::<Vec<_>>());
}

/// A message that ignores the CONGEST budget.
#[derive(Debug, Clone)]
struct FatMsg(Vec<u64>);

impl awake_mis::sim::MessageSize for FatMsg {
    fn bits(&self) -> usize {
        self.0.len() * 64
    }
}

/// A protocol that shouts oversized messages — the engine must refuse.
struct Shouter;
impl Protocol for Shouter {
    type Msg = FatMsg;
    type Output = ();
    fn send(&mut self, _: &mut NodeCtx) -> Outbox<FatMsg> {
        Outbox::Broadcast(FatMsg(vec![0; 64])) // 4096 bits
    }
    fn receive(&mut self, _: &mut NodeCtx, _: &[(Port, FatMsg)]) -> Action {
        Action::Terminate
    }
    fn output(&self) {}
}

#[test]
fn congest_budget_violations_abort() {
    let g = generators::path(2);
    let cfg = SimConfig { bit_limit: Some(256), ..SimConfig::seeded(1) };
    let err = Simulator::new(g, vec![Shouter, Shouter], cfg).run().unwrap_err();
    assert!(matches!(err, awake_mis::sim::SimError::MessageTooLarge { bits: 4096, .. }));
}
